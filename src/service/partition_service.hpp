// PartitionService: a long-lived fleet of warm contexts behind one
// admission queue.
//
// Everything below the service layer is built for exactly this embedding:
// DecomposeContext / FastContext keep splitters, OrderingCaches, and
// coarsening hierarchies warm across calls (PR 2/6), ExecControl gives
// every request a deadline and typed errors that leave the warm state
// reusable (PR 6), and the bit-identity pins (warm == cold == threaded,
// PR 2/3/5) are what make a *shared* context legal at all: a request
// served from a warm context returns exactly the bytes a fresh transient
// call would.  The service adds the three things a single context cannot
// provide:
//
//   * a registry of graphs, each owning at most one DecomposeContext and
//     one FastContext, behind an LRU cache with a byte budget
//     (memory_estimate_bytes ranks contexts; eviction drops *contexts*,
//     never registered graphs — graphs leave only via evict_graph),
//   * bounded admission with request batching: concurrent execute() calls
//     enqueue and one caller becomes the round leader, draining the whole
//     backlog into one round, grouping it by graph (so every request of a
//     group runs on the same warm context back to back — the group-commit
//     shape), and running the groups over an optional worker pool,
//   * per-request isolation: each request's outcome — including
//     DeadlineExceeded, Cancelled, injected faults, and allocation
//     failure — is caught at the request boundary and returned as a typed
//     ServiceResponse; the context the request ran on stays cached and
//     healthy (the PR 6 fault-injection fuzz pins that contexts survive
//     every such exception).
//
// Concurrency shape: contexts are exclusive resources (ExclusiveUse), so
// the service never runs two requests on one graph concurrently — a round
// runs its *groups* in parallel, and requests within a group serially.
// Different rounds never overlap (one leader at a time), which is also
// what lets a round create or rebuild contexts without holding the cache
// lock.  Request-level num_threads still works: a context's own pool
// forks inside the group's lane (on a service worker thread the nested
// pool degrades to the inline serial loop — ThreadPool::on_worker_thread
// — with bit-identical results).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/context.hpp"
#include "core/fast.hpp"
#include "util/bounded_queue.hpp"
#include "util/latency.hpp"

namespace mmd {

/// Typed outcome of one service request.  Every library exception a
/// request can raise maps onto exactly one of these (docs/API.md, "Error
/// model"); the service itself never throws out of execute().
enum class ServiceStatus {
  Ok,                ///< request served; full guarantees
  Degraded,          ///< fast-mode deadline after the coarse level;
                     ///< best-effort coloring + certificate (not an error)
  BadRequest,        ///< invalid_argument / ParseError: caller misuse
  NotFound,          ///< request names a graph that is not loaded
  DeadlineExceeded,  ///< ExecControl deadline hit (retryable)
  Cancelled,         ///< the request's CancelToken fired
  ResourceExhausted, ///< std::bad_alloc during the request
  InternalError,     ///< InvariantViolation / injected fault / unknown
  ShuttingDown,      ///< service closed before the request was admitted
};

/// Stable lowercase identifier ("ok", "bad_request", ...) used by the
/// JSONL protocol and logs.
const char* to_string(ServiceStatus status);

enum class RequestMode {
  Decompose,    ///< full Theorem 4 pipeline (DecomposeContext)
  Fast,         ///< multilevel fast mode (FastContext)
  Repartition,  ///< incremental solve seeded from the graph's cached prior
                ///< (DecomposeContext::repartition; see `deltas`)
};

/// One decomposition request against a registered graph.
struct ServiceRequest {
  std::string graph;  ///< registry name (see PartitionService::load_graph)
  RequestMode mode = RequestMode::Decompose;
  /// Pipeline knobs.  `options.exec.cancel` is honored (borrowed; must
  /// outlive the request); `options.exec.deadline` is honored as an
  /// absolute deadline, and `timeout_ms` below is the relative form.
  /// `options.diagnostics` is ignored — the service wires its own sink.
  DecomposeOptions options;
  /// Relative deadline, armed when the request *starts executing* (not
  /// when it is enqueued), so queueing delay does not eat the budget.
  /// < 0 = none.  Combines with options.exec.deadline: the earlier wins.
  long timeout_ms = -1;
  /// Vertex weights; empty = the graph's registered weights.  Must stay
  /// empty for RequestMode::Repartition (drift is expressed via `deltas`;
  /// mixing both is a BadRequest).
  std::vector<double> weights;
  /// Weight deltas of a Repartition request, applied to the graph's warm
  /// context before solving.  The chain's base weights are bound from the
  /// registered weights on the first repartition.  Deltas carry absolute
  /// weights and the context clears its dirty set only on success, so a
  /// request that fails with a retryable status (deadline, cancel,
  /// resource_exhausted) leaves the chain consistent: re-sending the same
  /// request returns the bit-identical result of an unfaulted first try.
  std::vector<WeightDelta> deltas;
  // Fast-mode knobs (RequestMode::Fast only); defaults match FastOptions.
  int fast_coarse_target = 4096;
  int fast_max_levels = 24;
  int fast_refine_passes = 4;
  std::uint64_t fast_seed = 0xfa57;
};

struct ServiceResponse {
  ServiceStatus status = ServiceStatus::InternalError;
  std::string error;  ///< exception what() when !ok()
  // Valid when ok():
  Coloring coloring;
  BalanceReport balance;
  double max_boundary = 0.0;
  double avg_boundary = 0.0;
  bool warm = false;      ///< the serving context existed before this request
  bool degraded = false;  ///< fast-mode best-effort result (status Degraded)
  double seconds = 0.0;   ///< service-side execution time (excludes queueing)
  // Repartition outcome (RequestMode::Repartition only):
  long migration_cost = -1;  ///< vertices that changed class vs the prior
  bool incremental = false;  ///< served by the seeded path
  bool escalated = false;    ///< certificate fired; full solve served

  bool ok() const {
    return status == ServiceStatus::Ok || status == ServiceStatus::Degraded;
  }
};

/// Aggregate counters; stats() returns a consistent snapshot.
struct ServiceStats {
  long requests = 0;        ///< requests executed (admitted and run)
  long ok = 0;              ///< status Ok or Degraded
  long errors = 0;          ///< everything else
  long cache_hits = 0;      ///< requests served by a pre-existing context
  long cache_misses = 0;    ///< requests that had to build their context
  long context_evictions = 0;  ///< contexts dropped by the byte budget
  long rounds = 0;          ///< leader rounds executed
  long batched_requests = 0;   ///< requests that shared a round with others
  long repartitions = 0;           ///< Repartition requests executed
  long repartition_escalations = 0;  ///< of those, escalated to full solves
  std::size_t cached_bytes = 0;   ///< current context-budget usage
  std::size_t graphs_loaded = 0;  ///< registry size
  double p50_seconds = 0.0, p95_seconds = 0.0, p99_seconds = 0.0;

  double hit_rate() const {
    const long total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
};

struct PartitionServiceOptions {
  /// Byte budget for cached contexts (memory_estimate_bytes sum).  When a
  /// finished round pushes the total past the budget, cold (least
  /// recently used, unpinned) graphs lose their contexts until the total
  /// fits; the graphs themselves stay registered.  A single context
  /// larger than the whole budget is still admitted while in use and
  /// evicted at the next opportunity — the budget bounds *retained* warm
  /// state, it never fails a request.
  std::size_t context_budget_bytes = std::size_t(256) << 20;
  /// Admission queue bound: execute() blocks (backpressure) while this
  /// many requests are already queued.
  std::size_t queue_capacity = 256;
  /// Service-level worker lanes for a round's per-graph groups; 1 =
  /// groups run serially on the leader.  Independent of (and composing
  /// with) per-request DecomposeOptions::num_threads.
  int num_workers = 1;
};

/// See the file comment.  Thread safety: every public method may be
/// called from any thread at any time, except the destructor, which
/// requires that no execute() call is in flight (join your clients
/// first — the usual server teardown order).
class PartitionService {
 public:
  explicit PartitionService(const PartitionServiceOptions& options = {});
  ~PartitionService();

  PartitionService(const PartitionService&) = delete;
  PartitionService& operator=(const PartitionService&) = delete;

  /// Register `g` under `name` (replacing any previous graph of that
  /// name, contexts included).  `weights` empty = the graph's embedded
  /// vertex weights, or all-ones if it has none.
  /// \throws std::invalid_argument on a weight arity mismatch
  void load_graph(const std::string& name, Graph g,
                  std::vector<double> weights = {});
  /// read_metis_file + load_graph.  Propagates ParseError untouched.
  void load_graph_file(const std::string& name, const std::string& path);
  /// Unregister `name` (graph + contexts).  A graph pinned by an
  /// in-flight round is unlinked immediately and destroyed when the round
  /// finishes.  Returns false if no such graph was loaded.
  bool evict_graph(const std::string& name);
  bool has_graph(const std::string& name) const;

  /// Execute one request: enqueue (blocking while the admission queue is
  /// full), ride a batching round, return the typed outcome.  Never
  /// throws a library error — see ServiceStatus.  Safe from any number of
  /// client threads.
  ServiceResponse execute(const ServiceRequest& request);

  ServiceStats stats() const;

  /// The service-owned diagnostics sink every request reports into.
  DecomposeDiagnostics& diagnostics() { return diag_; }

  /// Stop admitting (queued and in-flight requests still complete; new
  /// execute() calls return ShuttingDown) and wait for the backlog to
  /// drain.  Idempotent; the destructor calls it.
  void shutdown();

 private:
  /// One registered graph and its (lazily built) warm contexts.
  struct GraphState {
    std::string name;
    Graph graph;
    std::vector<double> weights;  ///< default weights of the graph
    std::unique_ptr<DecomposeContext> ctx;
    std::unique_ptr<FastContext> fctx;
    std::size_t cached_bytes = 0;  ///< last accounted context estimate
    int pins = 0;                  ///< rounds currently using this graph
    std::uint64_t last_use = 0;    ///< LRU tick
    bool doomed = false;           ///< evicted while pinned; free on unpin
  };

  /// A client's parked request (stack-owned by its execute() frame).
  struct Pending {
    const ServiceRequest* request = nullptr;
    ServiceResponse response;
    bool done = false;
  };

  /// A round's per-graph slice: requests in arrival order plus the
  /// resolved (pinned) state; null state = graph not loaded.
  struct Group {
    std::shared_ptr<GraphState> state;
    std::vector<Pending*> requests;
  };

  void process_round(std::vector<Pending*>& round);
  /// Serve one request on `gs` (null = graph not loaded), mapping every
  /// exception to a typed status; never throws.
  void execute_one(GraphState* gs, Pending& p);
  /// Re-account a state's context bytes and run LRU eviction; both under
  /// cache_mu_.
  void checkin_locked(GraphState& gs);
  void evict_until_within_budget_locked();

  const PartitionServiceOptions options_;
  DecomposeDiagnostics diag_;

  // Admission + round leadership.  round_mu_ guards leader_active_,
  // shutdown_, and every Pending::done flag.
  BoundedQueue<Pending*> queue_;
  mutable std::mutex round_mu_;
  std::condition_variable round_cv_;
  bool leader_active_ = false;
  bool shutdown_ = false;
  std::unique_ptr<ThreadPool> pool_;  ///< group lanes (num_workers > 1)

  // Graph registry + context cache.
  mutable std::mutex cache_mu_;
  std::unordered_map<std::string, std::shared_ptr<GraphState>> graphs_;
  std::size_t cached_bytes_ = 0;
  std::uint64_t lru_tick_ = 0;
  long evictions_ = 0;

  // Counters + latency reservoir.
  mutable std::mutex stats_mu_;
  ServiceStats stats_;
  LatencyRecorder latency_;
};

}  // namespace mmd
