#include "service/jsonl.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace mmd::jsonl {
namespace {

struct Cursor {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' ||
                            s[i] == '\n'))
      ++i;
  }
  bool eof() const { return i >= s.size(); }
  char peek() const { return s[i]; }
};

bool fail(std::string& error, const Cursor& c, const std::string& what) {
  error = what + " at column " + std::to_string(c.i + 1);
  return false;
}

bool parse_string(Cursor& c, std::string& out, std::string& error) {
  if (c.eof() || c.peek() != '"') return fail(error, c, "expected '\"'");
  ++c.i;
  out.clear();
  while (true) {
    if (c.eof()) return fail(error, c, "unterminated string");
    char ch = c.s[c.i++];
    if (ch == '"') return true;
    if (static_cast<unsigned char>(ch) < 0x20)
      return fail(error, c, "raw control character in string");
    if (ch != '\\') {
      out.push_back(ch);
      continue;
    }
    if (c.eof()) return fail(error, c, "unterminated escape");
    char esc = c.s[c.i++];
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        // \uXXXX: decode the code point; non-ASCII is emitted as UTF-8.
        if (c.i + 4 > c.s.size())
          return fail(error, c, "truncated \\u escape");
        unsigned code = 0;
        for (int j = 0; j < 4; ++j) {
          char h = c.s[c.i++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return fail(error, c, "invalid \\u escape digit");
        }
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default:
        return fail(error, c, "invalid escape character");
    }
  }
}

bool parse_value(Cursor& c, Value& out, std::string& error) {
  c.skip_ws();
  if (c.eof()) return fail(error, c, "expected a value");
  const char ch = c.peek();
  if (ch == '"') {
    out.kind = Value::Kind::String;
    return parse_string(c, out.string, error);
  }
  if (ch == '{' || ch == '[') {
    return fail(error, c,
                "nested objects/arrays are not supported by this protocol");
  }
  if (c.s.compare(c.i, 4, "true") == 0) {
    out.kind = Value::Kind::Bool;
    out.boolean = true;
    c.i += 4;
    return true;
  }
  if (c.s.compare(c.i, 5, "false") == 0) {
    out.kind = Value::Kind::Bool;
    out.boolean = false;
    c.i += 5;
    return true;
  }
  if (c.s.compare(c.i, 4, "null") == 0) {
    out.kind = Value::Kind::Null;
    c.i += 4;
    return true;
  }
  // Number: delegate the grammar to from_chars (accepts a superset of
  // JSON numbers — leading '+' — which is fine for a tolerant reader).
  const char* begin = c.s.data() + c.i;
  const char* end = c.s.data() + c.s.size();
  double num = 0.0;
  auto [ptr, ec] = std::from_chars(begin, end, num);
  if (ec != std::errc() || ptr == begin)
    return fail(error, c, "expected a value");
  // from_chars accepts "inf"/"nan" spellings and overflows like 1e999 to
  // infinity; JSON has no such values, and letting one through would put
  // a non-finite weight on the wire.
  if (!std::isfinite(num))
    return fail(error, c, "non-finite numbers are not valid JSON");
  out.kind = Value::Kind::Number;
  out.number = num;
  c.i += static_cast<std::size_t>(ptr - begin);
  return true;
}

}  // namespace

bool parse_object(const std::string& line, Object& out, std::string& error) {
  out.clear();
  error.clear();
  Cursor c{line};
  c.skip_ws();
  if (c.eof() || c.peek() != '{') return fail(error, c, "expected '{'");
  ++c.i;
  c.skip_ws();
  if (!c.eof() && c.peek() == '}') {
    ++c.i;
  } else {
    while (true) {
      c.skip_ws();
      std::string key;
      if (!parse_string(c, key, error)) return false;
      c.skip_ws();
      if (c.eof() || c.peek() != ':') return fail(error, c, "expected ':'");
      ++c.i;
      Value value;
      if (!parse_value(c, value, error)) return false;
      out[key] = std::move(value);
      c.skip_ws();
      if (c.eof()) return fail(error, c, "expected ',' or '}'");
      const char ch = c.peek();
      ++c.i;
      if (ch == '}') break;
      if (ch != ',') return fail(error, c, "expected ',' or '}'");
    }
  }
  c.skip_ws();
  if (!c.eof()) return fail(error, c, "trailing characters after object");
  return true;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

Writer& Writer::add(const std::string& key, const std::string& value) {
  std::string quoted;
  quoted.push_back('"');
  quoted.append(escape(value));
  quoted.push_back('"');
  fields_.emplace_back(key, std::move(quoted));
  return *this;
}

Writer& Writer::add(const std::string& key, const char* value) {
  return add(key, std::string(value));
}

Writer& Writer::add(const std::string& key, double value) {
  // Shortest round-trip representation, locale-independent.
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  fields_.emplace_back(key, ec == std::errc()
                                ? std::string(buf, ptr)
                                : std::string("null"));
  return *this;
}

Writer& Writer::add(const std::string& key, long value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

Writer& Writer::add(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

std::string Writer::str() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.push_back('"');
    out.append(escape(fields_[i].first));
    out.append("\":");
    out.append(fields_[i].second);
  }
  out.push_back('}');
  return out;
}

std::string get_string(const Object& o, const std::string& key,
                       const std::string& def, std::string& error) {
  auto it = o.find(key);
  if (it == o.end()) return def;
  if (it->second.kind != Value::Kind::String) {
    if (error.empty()) error = "field '" + key + "' must be a string";
    return def;
  }
  return it->second.string;
}

double get_number(const Object& o, const std::string& key, double def,
                  std::string& error) {
  auto it = o.find(key);
  if (it == o.end()) return def;
  if (it->second.kind != Value::Kind::Number) {
    if (error.empty()) error = "field '" + key + "' must be a number";
    return def;
  }
  return it->second.number;
}

bool get_bool(const Object& o, const std::string& key, bool def,
              std::string& error) {
  auto it = o.find(key);
  if (it == o.end()) return def;
  if (it->second.kind != Value::Kind::Bool) {
    if (error.empty()) error = "field '" + key + "' must be a boolean";
    return def;
  }
  return it->second.boolean;
}

bool has(const Object& o, const std::string& key) {
  return o.find(key) != o.end();
}

bool parse_pair_list(const std::string& s,
                     std::vector<std::pair<long, double>>& out,
                     std::string& error) {
  error.clear();
  std::vector<std::pair<long, double>> parsed;
  const char* p = s.data();
  const char* const end = s.data() + s.size();
  while (true) {
    while (p != end && (*p == ' ' || *p == '\t' || *p == '\r' || *p == '\n'))
      ++p;
    if (p == end) break;
    const char* const tok = p;
    long idx = 0;
    auto [ip, iec] = std::from_chars(p, end, idx);
    if (iec != std::errc() || ip == end || *ip != ':' || idx < 0) {
      error = "malformed delta pair at offset " +
              std::to_string(tok - s.data()) +
              " (expected '<index>:<weight>' with a non-negative index)";
      return false;
    }
    p = ip + 1;
    double val = 0.0;
    auto [vp, vec] = std::from_chars(p, end, val);
    if (vec != std::errc() || vp == p || !std::isfinite(val) || val < 0.0) {
      error = "malformed delta pair at offset " +
              std::to_string(tok - s.data()) +
              " (weight must be a finite non-negative number)";
      return false;
    }
    if (vp != end && *vp != ' ' && *vp != '\t' && *vp != '\r' && *vp != '\n') {
      error = "malformed delta pair at offset " +
              std::to_string(tok - s.data()) + " (trailing characters)";
      return false;
    }
    parsed.emplace_back(idx, val);
    p = vp;
  }
  out.insert(out.end(), parsed.begin(), parsed.end());
  return true;
}

}  // namespace mmd::jsonl
