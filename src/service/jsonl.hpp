// Minimal JSONL (one flat JSON object per line) codec for the service
// front end.
//
// The --serve protocol needs exactly one shape: a flat object of
// string / number / boolean / null values per line, both directions.  A
// full JSON library would be a dependency for no benefit (the container
// bakes none in), so this is a strict handwritten codec for that subset:
// nested objects and arrays are *rejected*, not silently mangled, and
// every malformed input yields a one-line error instead of a crash or a
// misparse — the serve loop turns that into a bad_request response and
// keeps going, which tests/cli_smoke.sh pins.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace mmd::jsonl {

/// One flat JSON value.
struct Value {
  enum class Kind { Null, Bool, Number, String };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
};

/// A parsed line: key -> value (later duplicate keys win, like most JSON
/// parsers).
using Object = std::map<std::string, Value>;

/// Parse one line into `out`.  Returns true on success; on failure
/// returns false with a human-readable message in `error` (out may hold
/// a partial parse).  Accepts only a single flat object — nested
/// containers, trailing garbage, and bare scalars are errors.
bool parse_object(const std::string& line, Object& out, std::string& error);

/// JSON string escaping (quotes, backslash, control characters).
std::string escape(const std::string& s);

/// Insertion-ordered flat-object writer for one response line.
class Writer {
 public:
  Writer& add(const std::string& key, const std::string& value);
  Writer& add(const std::string& key, const char* value);
  Writer& add(const std::string& key, double value);
  Writer& add(const std::string& key, long value);
  Writer& add(const std::string& key, bool value);

  /// The assembled `{...}` line (no trailing newline).
  std::string str() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

// Typed accessors with defaults; each returns the default when the key is
// absent, and reports a type error via `error` (first error wins) when
// the key is present with the wrong type.
std::string get_string(const Object& o, const std::string& key,
                       const std::string& def, std::string& error);
double get_number(const Object& o, const std::string& key, double def,
                  std::string& error);
bool get_bool(const Object& o, const std::string& key, bool def,
              std::string& error);
/// True when `key` is present (any type).
bool has(const Object& o, const std::string& key);

/// Parse a whitespace-separated "index:value" pair list — the wire
/// encoding of weight deltas ("0:2.5 17:0.75"), carried inside a JSON
/// string because this protocol rejects arrays.  Appends nothing on
/// failure; an empty or whitespace-only input is a valid empty list.
/// Rejects negative indices, non-finite or negative values, and any
/// malformed pair, with a human-readable message in `error`.
bool parse_pair_list(const std::string& s,
                     std::vector<std::pair<long, double>>& out,
                     std::string& error);

}  // namespace mmd::jsonl
