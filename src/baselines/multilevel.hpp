// Simplified multilevel edge-cut partitioner (METIS-style baseline).
//
// The standard practice the paper's problem setting departs from: minimize
// the *total* edge cut subject to loose balance, via heavy-edge-matching
// coarsening, recursive-bisection initial partitioning on the coarsest
// graph, and greedy KL/FM refinement during uncoarsening.  It optimizes a
// different objective (sum, not max, of boundary costs; loose balance), so
// E5 uses it to show where edge-cut partitioners fall short on the
// min-max metric.
#pragma once

#include <cstdint>

#include "graph/coloring.hpp"

namespace mmd {

struct MultilevelOptions {
  int coarsest_size = 64;       ///< stop coarsening below k * this many nodes
  double imbalance = 0.05;      ///< allowed relative class overweight
  int refine_passes = 4;
  std::uint64_t seed = 31;
};

Coloring multilevel_partition(const Graph& g, std::span<const double> w, int k,
                              const MultilevelOptions& options = {});

}  // namespace mmd
