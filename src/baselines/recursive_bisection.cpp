#include "baselines/recursive_bisection.hpp"

#include "core/bisection.hpp"

namespace mmd {

Coloring recursive_bisection(const Graph& g, std::span<const double> w, int k,
                             ISplitter& splitter) {
  return recursive_bisection_coloring(g, w, k, splitter);
}

}  // namespace mmd
