#include "baselines/recursive_bisection.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/bisection.hpp"
#include "separators/sweep_eval.hpp"

namespace mmd {

Coloring recursive_bisection(const Graph& g, std::span<const double> w, int k,
                             ISplitter& splitter) {
  return recursive_bisection_coloring(g, w, k, splitter);
}

namespace {

void orb_recurse(const Graph& g, std::span<const double> w,
                 std::vector<Vertex>& verts, int k, int first_class,
                 Coloring& out) {
  if (k <= 1 || verts.size() <= 1) {
    for (const Vertex v : verts)
      out.color[static_cast<std::size_t>(v)] = first_class;
    return;
  }
  // Widest axis of this block's bounding box.
  const int dim = g.dim();
  int axis = 0;
  std::int64_t best_extent = -1;
  for (int d = 0; d < dim; ++d) {
    std::int64_t lo = std::numeric_limits<std::int64_t>::max();
    std::int64_t hi = std::numeric_limits<std::int64_t>::min();
    for (const Vertex v : verts) {
      const std::int64_t c = g.coords_unchecked(v)[d];
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    if (hi - lo > best_extent) {
      best_extent = hi - lo;
      axis = d;
    }
  }
  std::sort(verts.begin(), verts.end(), [&](Vertex a, Vertex b) {
    const std::int32_t ca = g.coords_unchecked(a)[axis];
    const std::int32_t cb = g.coords_unchecked(b)[axis];
    return ca != cb ? ca < cb : a < b;
  });
  double total = 0.0;
  for (const Vertex v : verts) total += w[static_cast<std::size_t>(v)];
  const int k1 = k / 2;
  const double target = total * static_cast<double>(k1) / k;
  const std::size_t cut = best_prefix(verts, w, target, total);
  std::vector<Vertex> low(verts.begin(),
                          verts.begin() + static_cast<std::ptrdiff_t>(cut));
  std::vector<Vertex> high(verts.begin() + static_cast<std::ptrdiff_t>(cut),
                           verts.end());
  orb_recurse(g, w, low, k1, first_class, out);
  orb_recurse(g, w, high, k - k1, first_class + k1, out);
}

}  // namespace

Coloring orthogonal_recursive_bisection(const Graph& g,
                                        std::span<const double> w, int k) {
  MMD_REQUIRE(g.has_coords(), "ORB needs coordinates");
  MMD_REQUIRE(k >= 1, "k must be >= 1");
  MMD_REQUIRE(static_cast<Vertex>(w.size()) == g.num_vertices(),
              "weight arity mismatch");
  Coloring out;
  out.k = k;
  out.color.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<Vertex> verts(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    verts[static_cast<std::size_t>(v)] = v;
  orb_recurse(g, w, verts, k, 0, out);
  return out;
}

}  // namespace mmd
