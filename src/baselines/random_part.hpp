// Random assignment baseline: each vertex gets an independent uniform
// color.  The sanity floor for every experiment — any method must beat it
// on boundary cost, and it is (whp) only weakly balanced.
#pragma once

#include <cstdint>

#include "graph/coloring.hpp"

namespace mmd {

Coloring random_coloring(const Graph& g, int k, std::uint64_t seed = 37);

}  // namespace mmd
