#include "baselines/kst.hpp"

#include <cmath>

#include "core/measures.hpp"
#include "graph/subgraph.hpp"

namespace mmd {

namespace {

bool is_power_of_two(int k) { return k >= 1 && (k & (k - 1)) == 0; }

struct KstRec {
  const Graph& g;
  std::span<const double> w;
  ISplitter& splitter;
  double eps;

  void run(std::vector<Vertex> part, int k_lo, int k_hi,
           std::span<const double> boundary_measure, Coloring& out) {
    const int span = k_hi - k_lo;
    if (span <= 1 || part.empty()) {
      for (Vertex v : part) out[v] = k_lo;
      return;
    }

    // Lemma-8-style 2-way split balanced w.r.t. (w, boundary measure).
    // KST bisect evenly; the eps tolerance loosens how hard we try: with a
    // larger eps we accept the split of the cheaper of several candidate
    // orderings (modeled by simply accepting the splitter's answer), with
    // a small eps we spend extra refinement to pin the weights (modeled by
    // splitting on the weight measure last, which tightens its window).
    std::vector<MeasureRef> ms{MeasureRef(w), boundary_measure};
    TwoColoring two = multi_split(g, part, ms, splitter);

    // eps-relaxation: KST tolerate classes up to (1+eps) * avg.  If the
    // half weights are within the tolerance, keep them; otherwise move
    // boundary-cheap vertices across greedily until they are (this is
    // where small eps forces expensive extra cuts).
    const double total = set_measure(w, part);
    const double target = total / 2.0;
    const double tol = eps * total / 2.0 + set_measure_max(w, part) / 2.0;
    double w0 = set_measure(w, two.side[0]);
    int donor = w0 > target ? 0 : 1;
    while (std::abs(w0 - target) > tol && two.side[donor].size() > 1) {
      // Move the last vertex of the heavy side across (cheap but cut-
      // oblivious, mirroring the KST eps-cost trade-off).
      const Vertex v = two.side[donor].back();
      two.side[donor].pop_back();
      two.side[1 - donor].push_back(v);
      const double wv = this->w[static_cast<std::size_t>(v)];
      w0 += donor == 0 ? -wv : wv;
      donor = w0 > target ? 0 : 1;
    }

    // Recurse with an updated boundary measure (the dynamic weight trick
    // of [4]: boundary costs of the cut just made become vertex weights).
    Membership in0(g.num_vertices());
    in0.assign(two.side[0]);
    std::vector<double> next_bnd(boundary_measure.begin(), boundary_measure.end());
    for (int side = 0; side < 2; ++side) {
      for (Vertex v : two.side[side]) {
        const auto nbrs = g.neighbors(v);
        const auto eids = g.incident_edges(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          if (in0.contains(nbrs[i]) != (side == 0))
            next_bnd[static_cast<std::size_t>(v)] += g.edge_cost(eids[i]);
        }
      }
    }

    const int k_mid = k_lo + span / 2;
    run(std::move(two.side[0]), k_lo, k_mid, next_bnd, out);
    run(std::move(two.side[1]), k_mid, k_hi, next_bnd, out);
  }
};

}  // namespace

Coloring kst_decomposition(const Graph& g, std::span<const double> w, int k,
                           ISplitter& splitter, const KstOptions& options) {
  MMD_REQUIRE(is_power_of_two(k), "KST recursive bisection needs k = 2^i");
  MMD_REQUIRE(static_cast<Vertex>(w.size()) == g.num_vertices(),
              "weight arity mismatch");
  Coloring out(k, g.num_vertices());
  std::vector<Vertex> all(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex v = 0; v < g.num_vertices(); ++v) all[static_cast<std::size_t>(v)] = v;
  const std::vector<double> bnd(static_cast<std::size_t>(g.num_vertices()), 0.0);
  KstRec rec{g, w, splitter, options.eps};
  rec.run(std::move(all), 0, k, bnd, out);
  validate_coloring(g, out, /*require_total=*/true);
  return out;
}

}  // namespace mmd
