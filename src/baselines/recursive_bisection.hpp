// Recursive bisection baseline (Simon & Teng [8], "How good is recursive
// bisection?").  Splits the vertex set by weight-proportional splitting
// sets into k parts.  Bounds the *total* (hence average) boundary cost but
// makes no attempt to balance per-class boundary costs — the contrast the
// paper draws in the related-work discussion, quantified by benches E5/E8.
#pragma once

#include "graph/coloring.hpp"
#include "separators/splitter.hpp"

namespace mmd {

/// Partition into k classes with weight of each class about k_i/k of the
/// total (k_i the subtree leaf counts).  Returns a total coloring.
Coloring recursive_bisection(const Graph& g, std::span<const double> w, int k,
                             ISplitter& splitter);

/// Orthogonal recursive coordinate bisection (the classical ORB mesh
/// partitioner): recursively cut at the weighted prefix along the widest
/// coordinate axis, k1 = k/2 of the parts proportionally on the low side.
/// Pure geometry — no boundary-cost objective at all — which makes it the
/// natural "what a mesh library ships by default" baseline column for the
/// quality suites.  Requires coordinates.
Coloring orthogonal_recursive_bisection(const Graph& g,
                                        std::span<const double> w, int k);

}  // namespace mmd
