#include "baselines/random_part.hpp"

#include "util/prng.hpp"

namespace mmd {

Coloring random_coloring(const Graph& g, int k, std::uint64_t seed) {
  MMD_REQUIRE(k >= 1, "k must be >= 1");
  Rng rng(seed);
  Coloring chi(k, g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    chi[v] = static_cast<std::int32_t>(rng.next_below(static_cast<std::uint64_t>(k)));
  return chi;
}

}  // namespace mmd
