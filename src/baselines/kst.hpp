// Kiwi–Spielman–Teng-style min-max domain decomposition [4].
//
// Their approach: recursive bisection where every separator divides the
// vertices evenly with respect to *both* the weights and the (dynamic)
// boundary-cost function — i.e. Lemma 8 with two measures at each level of
// a balanced bisection tree.  It yields parts of weight at most
// (1 + eps) n/k with a maximum boundary cost that grows by a factor
// (1/eps)^{1-1/p} as eps shrinks — the trade-off the paper's Theorem 4
// eliminates.  Bench E7 sweeps eps to expose the contrast.
#pragma once

#include "core/multi_split.hpp"
#include "graph/coloring.hpp"

namespace mmd {

struct KstOptions {
  /// Weight-balance tolerance: classes aim at (1 + eps) * avg weight.
  double eps = 1.0;
};

/// k must be a power of two (KST's recursive bisection assumption; pad the
/// instance otherwise).  Returns a total coloring whose classes have
/// weight <= (1 + O(eps)) * ||w||_1 / k for bounded-degree inputs.
Coloring kst_decomposition(const Graph& g, std::span<const double> w, int k,
                           ISplitter& splitter, const KstOptions& options = {});

}  // namespace mmd
