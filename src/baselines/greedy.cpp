#include "baselines/greedy.hpp"

#include <algorithm>
#include <queue>

#include "util/prng.hpp"

namespace mmd {

Coloring greedy_coloring(const Graph& g, std::span<const double> w, int k,
                         GreedyOrder order, std::uint64_t seed) {
  MMD_REQUIRE(k >= 1, "k must be >= 1");
  MMD_REQUIRE(static_cast<Vertex>(w.size()) == g.num_vertices(),
              "weight arity mismatch");
  std::vector<Vertex> vs(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex v = 0; v < g.num_vertices(); ++v) vs[static_cast<std::size_t>(v)] = v;

  switch (order) {
    case GreedyOrder::HeaviestFirst:
      std::stable_sort(vs.begin(), vs.end(), [&](Vertex a, Vertex b) {
        return w[static_cast<std::size_t>(a)] > w[static_cast<std::size_t>(b)];
      });
      break;
    case GreedyOrder::Random: {
      Rng rng(seed);
      for (std::size_t i = vs.size(); i > 1; --i)
        std::swap(vs[i - 1], vs[rng.next_below(i)]);
      break;
    }
    case GreedyOrder::VertexId:
      break;
  }

  // Min-heap of (class weight, class id).
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (int i = 0; i < k; ++i) heap.emplace(0.0, i);

  Coloring chi(k, g.num_vertices());
  for (Vertex v : vs) {
    auto [cw, i] = heap.top();
    heap.pop();
    chi[v] = i;
    heap.emplace(cw + w[static_cast<std::size_t>(v)], i);
  }
  return chi;
}

}  // namespace mmd
