#include "baselines/multilevel.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "graph/coarsen.hpp"
#include "graph/graph.hpp"
#include "util/prng.hpp"

namespace mmd {

namespace {

/// Greedy growth initial partition on the coarsest graph: grow k regions
/// from random seeds, then assign leftovers to the lightest region.
Coloring initial_partition(const Graph& g, std::span<const double> w, int k,
                           Rng& rng) {
  const Vertex n = g.num_vertices();
  Coloring chi(k, n);
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  const double quota = total / k;

  std::vector<double> cw(static_cast<std::size_t>(k), 0.0);
  std::vector<Vertex> frontier;
  for (int i = 0; i < k; ++i) {
    // Pick an uncolored seed.
    Vertex seed = -1;
    for (int tries = 0; tries < 64 && seed < 0; ++tries) {
      const auto cand = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (chi[cand] == kUncolored) seed = cand;
    }
    if (seed < 0)
      for (Vertex v = 0; v < n && seed < 0; ++v)
        if (chi[v] == kUncolored) seed = v;
    if (seed < 0) break;
    // BFS growth until the quota is filled.
    frontier.assign(1, seed);
    chi[seed] = i;
    cw[static_cast<std::size_t>(i)] += w[static_cast<std::size_t>(seed)];
    std::size_t head = 0;
    while (head < frontier.size() && cw[static_cast<std::size_t>(i)] < quota) {
      const Vertex v = frontier[head++];
      for (Vertex u : g.neighbors(v)) {
        if (chi[u] != kUncolored) continue;
        if (cw[static_cast<std::size_t>(i)] >= quota) break;
        chi[u] = i;
        cw[static_cast<std::size_t>(i)] += w[static_cast<std::size_t>(u)];
        frontier.push_back(u);
      }
    }
  }
  for (Vertex v = 0; v < n; ++v) {
    if (chi[v] != kUncolored) continue;
    const int best = static_cast<int>(std::min_element(cw.begin(), cw.end()) -
                                      cw.begin());
    chi[v] = best;
    cw[static_cast<std::size_t>(best)] += w[static_cast<std::size_t>(v)];
  }
  return chi;
}

/// Greedy boundary refinement on the edge-cut objective under an
/// imbalance cap.
void refine(const Graph& g, std::span<const double> w, Coloring& chi,
            double imbalance, int passes) {
  const int k = chi.k;
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  const double cap = (1.0 + imbalance) * total / k;
  std::vector<double> cw = class_measure(w, chi);

  for (int pass = 0; pass < passes; ++pass) {
    bool moved = false;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const int from = chi[v];
      // Gain of moving v to each adjacent class.
      const auto nbrs = g.neighbors(v);
      const auto eids = g.incident_edges(v);
      double to_own = 0.0;
      std::vector<std::pair<int, double>> to_other;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const int c = chi[nbrs[i]];
        const double cost = g.edge_cost(eids[i]);
        if (c == from) {
          to_own += cost;
          continue;
        }
        bool found = false;
        for (auto& [cc, sum] : to_other)
          if (cc == c) {
            sum += cost;
            found = true;
          }
        if (!found) to_other.emplace_back(c, cost);
      }
      for (const auto& [cand, sum] : to_other) {
        const double gain = sum - to_own;
        const double wv = w[static_cast<std::size_t>(v)];
        if (gain > 1e-15 &&
            cw[static_cast<std::size_t>(cand)] + wv <= cap) {
          cw[static_cast<std::size_t>(from)] -= wv;
          cw[static_cast<std::size_t>(cand)] += wv;
          chi[v] = cand;
          moved = true;
          break;
        }
      }
    }
    if (!moved) break;
  }
}

Coloring partition_level(const Graph& g, std::span<const double> w, int k,
                         const MultilevelOptions& options, Rng& rng,
                         int depth) {
  if (g.num_vertices() <= std::max(options.coarsest_size * k, 2 * k) ||
      depth > 48) {
    Coloring chi = initial_partition(g, w, k, rng);
    refine(g, w, chi, options.imbalance, options.refine_passes);
    return chi;
  }
  CoarseLevel coarse = coarsen_heavy_edge(g, w, rng());
  if (coarse.graph.num_vertices() >= g.num_vertices()) {  // no progress
    Coloring chi = initial_partition(g, w, k, rng);
    refine(g, w, chi, options.imbalance, options.refine_passes);
    return chi;
  }
  const Coloring coarse_chi =
      partition_level(coarse.graph, coarse.weights, k, options, rng, depth + 1);
  // Project and refine.
  Coloring chi(k, g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    chi[v] = coarse_chi[coarse.parent[static_cast<std::size_t>(v)]];
  refine(g, w, chi, options.imbalance, options.refine_passes);
  return chi;
}

}  // namespace

Coloring multilevel_partition(const Graph& g, std::span<const double> w, int k,
                              const MultilevelOptions& options) {
  MMD_REQUIRE(k >= 1, "k must be >= 1");
  MMD_REQUIRE(static_cast<Vertex>(w.size()) == g.num_vertices(),
              "weight arity mismatch");
  if (g.num_vertices() == 0) return Coloring(k, 0);
  Rng rng(options.seed);
  Coloring chi = partition_level(g, w, k, options, rng, 0);
  validate_coloring(g, chi, /*require_total=*/true);
  return chi;
}

}  // namespace mmd
