// Greedy bin-packing baseline (paper, "Strict weight-balancedness"):
// assign vertices one by one to the currently lightest class.
//
// This achieves exactly the strict balance guarantee of Definition 1 —
// greedy-to-lightest satisfies
//   max class <= avg + (1 - 1/k) ||w||_inf   and
//   min class >= avg - (1 - 1/k) ||w||_inf
// (when a class last received an item it was the lightest at that moment,
// so max <= min + ||w||_inf; combine with the totals identity
// sum = k * avg) — but, as the paper stresses, "such a greedy algorithm
// will in general create huge boundary costs": it ignores the graph
// entirely.  That blowup is exactly what bench E5 measures.
#pragma once

#include <cstdint>

#include "graph/coloring.hpp"

namespace mmd {

enum class GreedyOrder {
  HeaviestFirst,  ///< LPT: sort by weight descending (best balance)
  VertexId,       ///< natural order (locality by accident at best)
  Random,         ///< shuffled (worst boundary, seed below)
};

Coloring greedy_coloring(const Graph& g, std::span<const double> w, int k,
                         GreedyOrder order = GreedyOrder::HeaviestFirst,
                         std::uint64_t seed = 29);

}  // namespace mmd
