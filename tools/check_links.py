#!/usr/bin/env python3
"""Check that relative markdown links resolve to real files.

Usage: check_links.py [file.md ...]        (default: all tracked *.md)

Scans inline links `[text](target)` in the given markdown files, ignores
absolute URLs (http/https/mailto) and pure in-page anchors, strips
`#fragment` suffixes, and verifies the target exists relative to the
linking file.  Exits non-zero listing every broken link — the CI docs job
runs this over the repo.
"""
import os
import re
import subprocess
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP = ("http://", "https://", "mailto:")


def files_from_git():
    out = subprocess.run(["git", "ls-files", "*.md", "**/*.md"],
                         capture_output=True, text=True, check=True)
    return [f for f in out.stdout.splitlines() if f]


def main():
    files = sys.argv[1:] or files_from_git()
    broken = []
    for md in files:
        with open(md, encoding="utf-8") as f:
            text = f.read()
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            resolved = os.path.normpath(os.path.join(os.path.dirname(md), path))
            if not os.path.exists(resolved):
                broken.append(f"{md}: broken link -> {target}")
    for b in broken:
        print(b)
    if broken:
        print(f"{len(broken)} broken link(s) in {len(files)} file(s)")
        return 1
    print(f"OK: all relative links resolve in {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
