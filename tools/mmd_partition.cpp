// mmd_partition — command-line min-max boundary decomposition.
//
//   mmd_partition -k 16 input.graph [options]
//
//   -k <int>           number of parts (required)
//   -p <float>         norm exponent (default 2.0)
//   -o <path>          write the partition (one color per line)
//   --fast             multilevel fast mode (large graphs)
//   --splitter <name>  auto | prefix | grid     (default auto)
//   --threads <n>      thread-pool lanes (1 = serial; bit-identical)
//   --fork-depth <d>   multi_split lane-tree depth (0 = from --threads)
//   --timeout-ms <ms>  deadline for the decomposition (DeadlineExceeded
//                      -> exit 3; in --fast mode a deadline that expires
//                      after the coarse level returns a degraded
//                      best-effort partition instead, still exit 3)
//   --verify           check the verify.cpp certificate BEFORE writing any
//                      output; a failed certificate writes nothing
//   --repartition <f>  incremental repartitioning demo: solve once with the
//                      file's weights, apply the weight deltas in <f>
//                      (whitespace-separated "vertex:weight" pairs, absolute
//                      new weights), and re-solve seeded from the first
//                      solution (escalating to a full solve if the
//                      certificate fires).  Incompatible with --fast.
//                      -o/--image/--verify apply to the final partition.
//   --image <path>     render the partition as a PPM (2-D instances)
//   --compare          also run greedy / recursive-bisection baselines
//   --quiet            suppress the report table
//
// The input is the METIS-like format of io/metis_io.hpp (vertex weights +
// edge costs; optional %coords block).
//
// Exit-code contract (stable; scripts may rely on it):
//   0  strictly balanced partition produced (and verified, with --verify)
//   1  partition produced but not strictly balanced
//   2  bad input: unreadable/malformed graph file or bad usage
//   3  deadline exceeded or cancelled (--timeout-ms)
//   4  internal invariant violation (including a failed --verify)
//
// Server mode (docs/API.md, "The service layer"):
//
//   mmd_partition --serve [--budget-kb <kb>] [--queue <n>] [--workers <n>]
//
// reads one JSON object per line from stdin and answers one JSON object
// per line on stdout, fronting a PartitionService (warm contexts, LRU
// byte budget, request batching).  Ops: load, decompose, repartition,
// stats, evict, shutdown.  The repartition op carries weight deltas in a
// "deltas" string field ("v:w v:w ...", absolute new weights) and answers
// with migration_cost/incremental/escalated alongside the usual quality
// fields.  Request errors — malformed JSON included — are answered
// in-band ({"ok":false,...}) and never kill the session; the process
// exits 0 on stdin EOF or a shutdown op (2 only for bad --serve usage).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>

#include "service/jsonl.hpp"
#include "service/partition_service.hpp"

#include "baselines/greedy.hpp"
#include "baselines/recursive_bisection.hpp"
#include "core/context.hpp"
#include "core/decompose.hpp"
#include "core/fast.hpp"
#include "core/verify.hpp"
#include "graph/coloring.hpp"
#include "io/metis_io.hpp"
#include "io/ppm.hpp"
#include "separators/prefix_splitter.hpp"
#include "util/rss.hpp"
#include "util/table.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s -k <parts> [-p <norm>] [-o <out>] [--fast]\n"
               "       [--splitter auto|prefix|grid] [--init best|paper|bisection]\n"
               "       [--window-scan] [--sweep-mode default|window|adaptive]\n"
               "       [--threads <n>] [--fork-depth <d>]\n"
               "       [--timeout-ms <ms>] [--image <ppm>]\n"
               "       [--repartition <deltas-file>]\n"
               "       [--compare] [--quiet] [--verify] [--mem-stats] "
               "<input.graph>\n"
               "       %s --serve [--budget-kb <kb>] [--queue <n>] "
               "[--workers <n>]\n",
               argv0, argv0);
  std::exit(2);
}

// One decompose/fast request assembled from a parsed JSONL object.
// Returns false (with `error` set) on a malformed field; unknown keys are
// ignored (forward compatibility).
bool request_from_json(const mmd::jsonl::Object& obj, mmd::ServiceRequest& req,
                       bool& include_partition, std::string& error) {
  using mmd::jsonl::get_bool;
  using mmd::jsonl::get_number;
  using mmd::jsonl::get_string;

  req.graph = get_string(obj, "graph", "", error);
  if (req.graph.empty() && error.empty()) error = "field 'graph' is required";

  const std::string mode = get_string(obj, "mode", "full", error);
  if (mode == "full") req.mode = mmd::RequestMode::Decompose;
  else if (mode == "fast") req.mode = mmd::RequestMode::Fast;
  else if (mode == "repartition") req.mode = mmd::RequestMode::Repartition;
  else if (error.empty())
    error = "field 'mode' must be \"full\", \"fast\", or \"repartition\"";

  // Weight deltas ride in a string field (this protocol has no arrays):
  // whitespace-separated "vertex:weight" pairs, absolute new weights.
  const std::string deltas = get_string(obj, "deltas", "", error);
  if (!deltas.empty() && error.empty()) {
    std::vector<std::pair<long, double>> pairs;
    if (!mmd::jsonl::parse_pair_list(deltas, pairs, error)) return false;
    req.deltas.reserve(pairs.size());
    for (const auto& [v, weight] : pairs)
      req.deltas.push_back({static_cast<mmd::Vertex>(v), weight});
  }

  req.options.k = static_cast<int>(get_number(obj, "k", 0, error));
  if (req.options.k < 1 && error.empty()) error = "field 'k' must be >= 1";
  req.options.p = get_number(obj, "p", 2.0, error);
  req.options.num_threads =
      static_cast<int>(get_number(obj, "threads", 1, error));
  req.options.fork_depth =
      static_cast<int>(get_number(obj, "fork_depth", 0, error));
  req.options.window_scan = get_bool(obj, "window_scan", false, error);
  const std::string sweep = get_string(obj, "sweep_mode", "default", error);
  if (sweep == "default") req.options.sweep_mode = mmd::SweepMode::BetterOfTwo;
  else if (sweep == "window") req.options.sweep_mode = mmd::SweepMode::WindowMin;
  else if (sweep == "adaptive") req.options.sweep_mode = mmd::SweepMode::Adaptive;
  else if (error.empty())
    error = "field 'sweep_mode' must be \"default\", \"window\", or "
            "\"adaptive\"";
  req.timeout_ms = static_cast<long>(get_number(obj, "timeout_ms", -1, error));

  const std::string splitter = get_string(obj, "splitter", "auto", error);
  if (splitter == "auto") req.options.splitter = mmd::SplitterKind::Auto;
  else if (splitter == "prefix") req.options.splitter = mmd::SplitterKind::Prefix;
  else if (splitter == "grid") req.options.splitter = mmd::SplitterKind::Grid;
  else if (error.empty()) error = "unknown splitter '" + splitter + "'";

  // Same default as the tool's one-shot mode (best-of), so a --serve
  // decompose answers identically to `mmd_partition -k <k> <file>`.
  const std::string init = get_string(obj, "init", "best", error);
  if (init == "paper") req.options.init = mmd::InitMethod::Paper;
  else if (init == "bisection") req.options.init = mmd::InitMethod::Bisection;
  else if (init == "best") req.options.init = mmd::InitMethod::Best;
  else if (error.empty()) error = "unknown init '" + init + "'";

  req.fast_coarse_target =
      static_cast<int>(get_number(obj, "coarse_target", 4096, error));
  req.fast_max_levels =
      static_cast<int>(get_number(obj, "max_levels", 24, error));
  req.fast_refine_passes =
      static_cast<int>(get_number(obj, "refine_passes", 4, error));
  req.fast_seed =
      static_cast<std::uint64_t>(get_number(obj, "seed", 0xfa57, error));

  include_partition = get_bool(obj, "include_partition", false, error);
  return error.empty();
}

void emit(const mmd::jsonl::Writer& w) {
  std::fputs(w.str().c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);  // request-response over a pipe: no buffering games
}

void emit_error(const char* op, const std::string& message,
                const char* status = "bad_request") {
  mmd::jsonl::Writer w;
  w.add("ok", false).add("op", op).add("status", status).add("error", message);
  emit(w);
}

/// stdin/stdout JSONL server.  Exit 0 on EOF or shutdown op.
int serve_main(const mmd::PartitionServiceOptions& service_options) {
  using namespace mmd;
  PartitionService service(service_options);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    jsonl::Object obj;
    std::string error;
    if (!jsonl::parse_object(line, obj, error)) {
      emit_error("", "malformed request: " + error);
      continue;
    }
    const std::string op = jsonl::get_string(obj, "op", "", error);
    if (op == "load") {
      const std::string graph = jsonl::get_string(obj, "graph", "", error);
      const std::string path = jsonl::get_string(obj, "path", "", error);
      if (!error.empty() || graph.empty() || path.empty()) {
        emit_error("load", error.empty()
                               ? "fields 'graph' and 'path' are required"
                               : error);
        continue;
      }
      try {
        service.load_graph_file(graph, path);
      } catch (const std::exception& e) {
        emit_error("load", e.what());
        continue;
      }
      jsonl::Writer w;
      w.add("ok", true).add("op", "load").add("graph", graph);
      emit(w);
    } else if (op == "decompose") {
      ServiceRequest req;
      bool include_partition = false;
      if (!request_from_json(obj, req, include_partition, error)) {
        emit_error("decompose", error);
        continue;
      }
      const ServiceResponse resp = service.execute(req);
      jsonl::Writer w;
      w.add("ok", resp.ok())
          .add("op", "decompose")
          .add("graph", req.graph)
          .add("status", to_string(resp.status));
      if (resp.ok()) {
        // Deterministic payload only (no timings): two responses for the
        // same request must be byte-identical, warm or cold — the smoke
        // test pins that after stripping the "warm" field.
        w.add("k", static_cast<long>(resp.coloring.k))
            .add("max_boundary", resp.max_boundary)
            .add("avg_boundary", resp.avg_boundary)
            .add("max_dev", resp.balance.max_dev)
            .add("strict", resp.balance.strictly_balanced)
            .add("degraded", resp.degraded)
            .add("warm", resp.warm);
        if (include_partition) {
          std::string part;
          part.reserve(resp.coloring.color.size() * 2);
          for (std::size_t v = 0; v < resp.coloring.color.size(); ++v) {
            if (v > 0) part.push_back(' ');
            part.append(std::to_string(resp.coloring.color[v]));
          }
          w.add("partition", part);
        }
      } else {
        w.add("error", resp.error);
      }
      emit(w);
    } else if (op == "repartition") {
      ServiceRequest req;
      bool include_partition = false;
      if (!request_from_json(obj, req, include_partition, error)) {
        emit_error("repartition", error);
        continue;
      }
      req.mode = RequestMode::Repartition;  // the op implies the mode
      const ServiceResponse resp = service.execute(req);
      jsonl::Writer w;
      w.add("ok", resp.ok())
          .add("op", "repartition")
          .add("graph", req.graph)
          .add("status", to_string(resp.status));
      if (resp.ok()) {
        // Deterministic payload only, like the decompose op: the chain's
        // state is a function of the request sequence, so two identical
        // sessions answer byte-identically.
        w.add("k", static_cast<long>(resp.coloring.k))
            .add("max_boundary", resp.max_boundary)
            .add("avg_boundary", resp.avg_boundary)
            .add("max_dev", resp.balance.max_dev)
            .add("strict", resp.balance.strictly_balanced)
            .add("migration_cost", resp.migration_cost)
            .add("incremental", resp.incremental)
            .add("escalated", resp.escalated)
            .add("warm", resp.warm);
        if (include_partition) {
          std::string part;
          part.reserve(resp.coloring.color.size() * 2);
          for (std::size_t v = 0; v < resp.coloring.color.size(); ++v) {
            if (v > 0) part.push_back(' ');
            part.append(std::to_string(resp.coloring.color[v]));
          }
          w.add("partition", part);
        }
      } else {
        w.add("error", resp.error);
      }
      emit(w);
    } else if (op == "stats") {
      const ServiceStats s = service.stats();
      jsonl::Writer w;
      w.add("ok", true)
          .add("op", "stats")
          .add("requests", s.requests)
          .add("ok_requests", s.ok)
          .add("errors", s.errors)
          .add("cache_hits", s.cache_hits)
          .add("cache_misses", s.cache_misses)
          .add("hit_rate", s.hit_rate())
          .add("context_evictions", s.context_evictions)
          .add("rounds", s.rounds)
          .add("batched_requests", s.batched_requests)
          .add("repartitions", s.repartitions)
          .add("repartition_escalations", s.repartition_escalations)
          .add("cached_bytes", static_cast<long>(s.cached_bytes))
          .add("graphs_loaded", static_cast<long>(s.graphs_loaded))
          .add("p50_seconds", s.p50_seconds)
          .add("p95_seconds", s.p95_seconds)
          .add("p99_seconds", s.p99_seconds);
      emit(w);
    } else if (op == "evict") {
      const std::string graph = jsonl::get_string(obj, "graph", "", error);
      if (!error.empty() || graph.empty()) {
        emit_error("evict",
                   error.empty() ? "field 'graph' is required" : error);
        continue;
      }
      jsonl::Writer w;
      w.add("ok", true)
          .add("op", "evict")
          .add("graph", graph)
          .add("existed", service.evict_graph(graph));
      emit(w);
    } else if (op == "shutdown") {
      jsonl::Writer w;
      w.add("ok", true).add("op", "shutdown");
      emit(w);
      break;
    } else {
      emit_error(op.c_str(), error.empty() ? "unknown op '" + op + "'"
                                           : error);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmd;
  // Server mode peels off first: it has its own (tiny) flag set.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") != 0) continue;
    PartitionServiceOptions so;
    for (int j = 1; j < argc; ++j) {
      const std::string arg = argv[j];
      auto next = [&]() -> const char* {
        if (j + 1 >= argc) usage(argv[0]);
        return argv[++j];
      };
      if (arg == "--serve") continue;
      else if (arg == "--budget-kb") {
        const long kb = std::atol(next());
        if (kb < 0) usage(argv[0]);
        so.context_budget_bytes = static_cast<std::size_t>(kb) << 10;
      } else if (arg == "--queue") {
        const int q = std::atoi(next());
        if (q < 1) usage(argv[0]);
        so.queue_capacity = static_cast<std::size_t>(q);
      } else if (arg == "--workers") {
        so.num_workers = std::atoi(next());
        if (so.num_workers < 1) usage(argv[0]);
      } else {
        usage(argv[0]);
      }
    }
    return serve_main(so);
  }
  int k = 0;
  double p = 2.0;
  std::string input, output, image, repartition_file;
  bool fast = false, compare = false, quiet = false, verify = false;
  bool mem_stats = false;
  bool window_scan = false;
  SweepMode sweep_mode = SweepMode::BetterOfTwo;
  int threads = 1;
  int fork_depth = 0;  // 0 = derive the lane-tree depth from the pool
  long timeout_ms = -1;  // < 0 = unlimited
  SplitterKind splitter = SplitterKind::Auto;
  InitMethod init = InitMethod::Best;  // the tool defaults to best-of

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "-k") {
      k = std::atoi(next());
    } else if (arg == "-p") {
      p = std::atof(next());
    } else if (arg == "-o") {
      output = next();
    } else if (arg == "--image") {
      image = next();
    } else if (arg == "--fast") {
      fast = true;
    } else if (arg == "--compare") {
      compare = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--mem-stats") {
      mem_stats = true;  // graph/workspace/context byte breakdown on stdout
    } else if (arg == "--repartition") {
      repartition_file = next();
    } else if (arg == "--window-scan") {
      window_scan = true;  // legacy alias for --sweep-mode window
    } else if (arg == "--sweep-mode") {
      const std::string name = next();
      if (name == "default") sweep_mode = SweepMode::BetterOfTwo;
      else if (name == "window") sweep_mode = SweepMode::WindowMin;
      else if (name == "adaptive") sweep_mode = SweepMode::Adaptive;
      else usage(argv[0]);
    } else if (arg == "--threads") {
      threads = std::atoi(next());
      if (threads < 1) usage(argv[0]);
    } else if (arg == "--fork-depth") {
      fork_depth = std::atoi(next());
      if (fork_depth < 0) usage(argv[0]);
    } else if (arg == "--timeout-ms") {
      timeout_ms = std::atol(next());
      if (timeout_ms < 0) usage(argv[0]);
    } else if (arg == "--splitter") {
      const std::string name = next();
      if (name == "auto") splitter = SplitterKind::Auto;
      else if (name == "prefix") splitter = SplitterKind::Prefix;
      else if (name == "grid") splitter = SplitterKind::Grid;
      else usage(argv[0]);
    } else if (arg == "--init") {
      const std::string name = next();
      if (name == "paper") init = InitMethod::Paper;
      else if (name == "bisection") init = InitMethod::Bisection;
      else if (name == "best") init = InitMethod::Best;
      else usage(argv[0]);
    } else if (arg == "-h" || arg == "--help" || arg[0] == '-') {
      usage(argv[0]);
    } else {
      if (!input.empty()) usage(argv[0]);
      input = arg;
    }
  }
  if (k < 1 || input.empty()) usage(argv[0]);
  // The incremental chain lives on DecomposeContext; the fast path has its
  // own (FastContext::repartition) but the demo exercises the full one.
  if (fast && !repartition_file.empty()) usage(argv[0]);

  try {
    const GraphWithWeights in = read_metis_file(input);
    const Graph& g = in.graph;

    // Arm the deadline as late as possible (after parsing): --timeout-ms
    // budgets the decomposition, not the file read.
    ExecControl exec;
    if (timeout_ms >= 0) exec = ExecControl::with_timeout_ms(timeout_ms);

    Coloring chi;
    BalanceReport balance;
    double max_b = 0.0, avg_b = 0.0, seconds = 0.0;
    bool degraded = false;
    // The weights the final partition is certified against: the file's,
    // or the drifted vector after --repartition applied its deltas.
    std::vector<double> final_weights = in.weights;
    // --repartition bookkeeping (base solve metrics + outcome flags).
    bool did_repartition = false;
    double base_max_b = 0.0, base_avg_b = 0.0, base_seconds = 0.0;
    BalanceReport base_balance;
    long migration_cost = -1;
    bool rep_incremental = false, rep_escalated = false;
    // --mem-stats breakdown, filled by whichever solve path runs.
    std::size_t ws_bytes = 0, ctx_bytes = 0;
    if (fast) {
      FastOptions opt;
      opt.inner.k = k;
      opt.inner.p = p;
      opt.inner.splitter = splitter;
      opt.inner.init = init;
      opt.inner.window_scan = window_scan;
      opt.inner.sweep_mode = sweep_mode;
      opt.inner.num_threads = threads;
      opt.inner.fork_depth = fork_depth;
      opt.inner.exec = exec;
      FastResult res = [&] {
        if (!mem_stats) return decompose_fast(g, in.weights, opt);
        // decompose_fast is itself a transient FastContext; holding one
        // here lets us read the warm footprint before teardown.
        FastContext fctx(g, opt);
        FastResult r = fctx.decompose(in.weights);
        ctx_bytes = fctx.memory_estimate_bytes();
        return r;
      }();
      chi = std::move(res.coloring);
      balance = res.balance;
      max_b = res.max_boundary;
      avg_b = res.avg_boundary;
      seconds = res.total_seconds;
      degraded = res.degraded;
      if (degraded)
        std::fprintf(stderr,
                     "warning: deadline expired after the coarse level; "
                     "result is best-effort (not strictly balanced)\n");
    } else {
      DecomposeOptions opt;
      opt.k = k;
      opt.p = p;
      opt.splitter = splitter;
      opt.init = init;
      opt.window_scan = window_scan;
      opt.sweep_mode = sweep_mode;
      opt.num_threads = threads;
      opt.fork_depth = fork_depth;
      opt.exec = exec;
      if (repartition_file.empty()) {
        DecomposeResult res = [&] {
          if (!mem_stats) return decompose(g, in.weights, opt);
          // decompose() is itself a transient DecomposeContext; holding
          // one here lets us read the warm footprint before teardown.
          DecomposeContext ctx(g, opt);
          DecomposeResult r = ctx.decompose(in.weights);
          ws_bytes = ctx.workspace().memory_bytes();
          ctx_bytes = ctx.memory_estimate_bytes();
          return r;
        }();
        chi = std::move(res.coloring);
        balance = res.balance;
        max_b = res.max_boundary;
        avg_b = res.avg_boundary;
        seconds = res.total_seconds;
      } else {
        // Incremental demo: base solve, then re-solve seeded from it
        // after applying the file's absolute weight deltas.
        std::ifstream df(repartition_file);
        if (!df)
          throw std::invalid_argument("cannot read delta file '" +
                                      repartition_file + "'");
        std::string text((std::istreambuf_iterator<char>(df)),
                         std::istreambuf_iterator<char>());
        std::vector<std::pair<long, double>> pairs;
        std::string perr;
        if (!jsonl::parse_pair_list(text, pairs, perr))
          throw std::invalid_argument("delta file '" + repartition_file +
                                      "': " + perr);
        std::vector<WeightDelta> deltas;
        deltas.reserve(pairs.size());
        for (const auto& [v, weight] : pairs)
          deltas.push_back({static_cast<Vertex>(v), weight});

        DecomposeContext ctx(g, opt);
        ctx.set_weights(in.weights);
        DecomposeResult base = ctx.repartition();
        base_max_b = base.max_boundary;
        base_avg_b = base.avg_boundary;
        base_balance = base.balance;
        base_seconds = base.total_seconds;
        DecomposeResult res = ctx.repartition(deltas);
        chi = std::move(res.coloring);
        balance = res.balance;
        max_b = res.max_boundary;
        avg_b = res.avg_boundary;
        seconds = res.total_seconds;
        migration_cost = res.migration_cost;
        rep_incremental = res.incremental;
        rep_escalated = res.escalated;
        did_repartition = true;
        final_weights.assign(ctx.weights().begin(), ctx.weights().end());
        ws_bytes = ctx.workspace().memory_bytes();
        ctx_bytes = ctx.memory_estimate_bytes();
      }
    }

    // Certificate check FIRST: with --verify no output file is ever
    // written from an uncertified coloring.
    bool verify_ok = true;
    if (verify) {
      const VerifyReport rep = verify_decomposition(g, final_weights, chi);
      verify_ok = rep.ok;
      std::printf("verify: %s", rep.ok ? "OK" : "FAILED");
      for (const auto& f : rep.failures) std::printf("\n  - %s", f.c_str());
      std::printf(" (%d classes, %d fragmented)\n", rep.nonempty_classes,
                  rep.fragmented_classes);
    }
    if (verify_ok) {
      if (!output.empty()) write_partition_file(chi, output);
      if (!image.empty()) write_coloring_ppm(g, chi, image);
    }

    if (!quiet) {
      Table table("mmd_partition " + input,
                  {"method", "max boundary", "avg boundary", "max |dev|",
                   "strict", "time s"});
      if (did_repartition) {
        table.add_row({"minmax-decomp", Table::num(base_max_b, 2),
                       Table::num(base_avg_b, 2),
                       Table::num(base_balance.max_dev, 3),
                       base_balance.strictly_balanced ? "yes" : "NO",
                       Table::num(base_seconds, 3)});
        table.add_row({rep_escalated ? "repartition (full)" : "repartition",
                       Table::num(max_b, 2), Table::num(avg_b, 2),
                       Table::num(balance.max_dev, 3),
                       balance.strictly_balanced ? "yes" : "NO",
                       Table::num(seconds, 3)});
      } else {
        table.add_row({fast ? "minmax-decomp (fast)" : "minmax-decomp",
                       Table::num(max_b, 2), Table::num(avg_b, 2),
                       Table::num(balance.max_dev, 3),
                       balance.strictly_balanced ? "yes" : "NO",
                       Table::num(seconds, 3)});
      }
      if (compare) {
        const Coloring greedy =
            greedy_coloring(g, in.weights, k, GreedyOrder::HeaviestFirst);
        const auto grep = balance_report(in.weights, greedy);
        table.add_row({"greedy LPT",
                       Table::num(max_boundary_cost(g, greedy), 2),
                       Table::num(avg_boundary_cost(g, greedy), 2),
                       Table::num(grep.max_dev, 3),
                       grep.strictly_balanced ? "yes" : "NO", "-"});
        PrefixSplitter ps;
        const Coloring rb = recursive_bisection(g, in.weights, k, ps);
        const auto rrep = balance_report(in.weights, rb);
        table.add_row({"recursive bisection",
                       Table::num(max_boundary_cost(g, rb), 2),
                       Table::num(avg_boundary_cost(g, rb), 2),
                       Table::num(rrep.max_dev, 3),
                       rrep.strictly_balanced ? "yes" : "NO", "-"});
      }
      table.print();
      std::printf("n=%d m=%d k=%d strict window (1-1/k)||w||_inf = %.4f\n",
                  g.num_vertices(), g.num_edges(), k, balance.strict_bound);
      if (did_repartition)
        std::printf("repartition: %s, migrated %ld/%d vertices\n",
                    rep_incremental ? "incremental"
                                    : (rep_escalated ? "escalated to full solve"
                                                     : "full (no prior)"),
                    migration_cost, g.num_vertices());
    }
    if (mem_stats) {
      // Printed even under --quiet: the breakdown is the requested output.
      const std::size_t gb = g.memory_bytes();
      const double bpe =
          g.num_edges() > 0 ? static_cast<double>(gb) / g.num_edges() : 0.0;
      std::printf("mem-stats: graph_bytes=%zu bytes_per_edge=%.1f "
                  "offsets=%s\n",
                  gb, bpe, g.wide_offsets() ? "64-bit" : "32-bit");
      std::printf("mem-stats: workspace_bytes=%zu context_estimate_bytes=%zu\n",
                  ws_bytes, ctx_bytes);
      std::printf("mem-stats: peak_rss_bytes=%zu current_rss_bytes=%zu\n",
                  peak_rss_bytes(), current_rss_bytes());
    }
    if (degraded) return 3;            // deadline, best-effort result
    if (!verify_ok) return 4;          // our own certificate failed
    return balance.strictly_balanced ? 0 : 1;
  } catch (const DeadlineExceeded& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (const Cancelled& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (const InvariantViolation& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 4;
  } catch (const std::invalid_argument& e) {
    // ParseError (malformed graph file, with its line number) and every
    // other bad-input MMD_REQUIRE land here.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 4;
  }
}
