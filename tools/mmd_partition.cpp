// mmd_partition — command-line min-max boundary decomposition.
//
//   mmd_partition -k 16 input.graph [options]
//
//   -k <int>           number of parts (required)
//   -p <float>         norm exponent (default 2.0)
//   -o <path>          write the partition (one color per line)
//   --fast             multilevel fast mode (large graphs)
//   --splitter <name>  auto | prefix | grid     (default auto)
//   --threads <n>      thread-pool lanes (1 = serial; bit-identical)
//   --fork-depth <d>   multi_split lane-tree depth (0 = from --threads)
//   --timeout-ms <ms>  deadline for the decomposition (DeadlineExceeded
//                      -> exit 3; in --fast mode a deadline that expires
//                      after the coarse level returns a degraded
//                      best-effort partition instead, still exit 3)
//   --verify           check the verify.cpp certificate BEFORE writing any
//                      output; a failed certificate writes nothing
//   --image <path>     render the partition as a PPM (2-D instances)
//   --compare          also run greedy / recursive-bisection baselines
//   --quiet            suppress the report table
//
// The input is the METIS-like format of io/metis_io.hpp (vertex weights +
// edge costs; optional %coords block).
//
// Exit-code contract (stable; scripts may rely on it):
//   0  strictly balanced partition produced (and verified, with --verify)
//   1  partition produced but not strictly balanced
//   2  bad input: unreadable/malformed graph file or bad usage
//   3  deadline exceeded or cancelled (--timeout-ms)
//   4  internal invariant violation (including a failed --verify)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baselines/greedy.hpp"
#include "baselines/recursive_bisection.hpp"
#include "core/decompose.hpp"
#include "core/fast.hpp"
#include "core/verify.hpp"
#include "graph/coloring.hpp"
#include "io/metis_io.hpp"
#include "io/ppm.hpp"
#include "separators/prefix_splitter.hpp"
#include "util/table.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s -k <parts> [-p <norm>] [-o <out>] [--fast]\n"
               "       [--splitter auto|prefix|grid] [--init best|paper|bisection]\n"
               "       [--window-scan] [--threads <n>] [--fork-depth <d>]\n"
               "       [--timeout-ms <ms>] [--image <ppm>]\n"
               "       [--compare] [--quiet] [--verify] <input.graph>\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmd;
  int k = 0;
  double p = 2.0;
  std::string input, output, image;
  bool fast = false, compare = false, quiet = false, verify = false;
  bool window_scan = false;
  int threads = 1;
  int fork_depth = 0;  // 0 = derive the lane-tree depth from the pool
  long timeout_ms = -1;  // < 0 = unlimited
  SplitterKind splitter = SplitterKind::Auto;
  InitMethod init = InitMethod::Best;  // the tool defaults to best-of

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "-k") {
      k = std::atoi(next());
    } else if (arg == "-p") {
      p = std::atof(next());
    } else if (arg == "-o") {
      output = next();
    } else if (arg == "--image") {
      image = next();
    } else if (arg == "--fast") {
      fast = true;
    } else if (arg == "--compare") {
      compare = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--window-scan") {
      window_scan = true;  // min-cost in-window prefixes (SweepMode)
    } else if (arg == "--threads") {
      threads = std::atoi(next());
      if (threads < 1) usage(argv[0]);
    } else if (arg == "--fork-depth") {
      fork_depth = std::atoi(next());
      if (fork_depth < 0) usage(argv[0]);
    } else if (arg == "--timeout-ms") {
      timeout_ms = std::atol(next());
      if (timeout_ms < 0) usage(argv[0]);
    } else if (arg == "--splitter") {
      const std::string name = next();
      if (name == "auto") splitter = SplitterKind::Auto;
      else if (name == "prefix") splitter = SplitterKind::Prefix;
      else if (name == "grid") splitter = SplitterKind::Grid;
      else usage(argv[0]);
    } else if (arg == "--init") {
      const std::string name = next();
      if (name == "paper") init = InitMethod::Paper;
      else if (name == "bisection") init = InitMethod::Bisection;
      else if (name == "best") init = InitMethod::Best;
      else usage(argv[0]);
    } else if (arg == "-h" || arg == "--help" || arg[0] == '-') {
      usage(argv[0]);
    } else {
      if (!input.empty()) usage(argv[0]);
      input = arg;
    }
  }
  if (k < 1 || input.empty()) usage(argv[0]);

  try {
    const GraphWithWeights in = read_metis_file(input);
    const Graph& g = in.graph;

    // Arm the deadline as late as possible (after parsing): --timeout-ms
    // budgets the decomposition, not the file read.
    ExecControl exec;
    if (timeout_ms >= 0) exec = ExecControl::with_timeout_ms(timeout_ms);

    Coloring chi;
    BalanceReport balance;
    double max_b = 0.0, avg_b = 0.0, seconds = 0.0;
    bool degraded = false;
    if (fast) {
      FastOptions opt;
      opt.inner.k = k;
      opt.inner.p = p;
      opt.inner.splitter = splitter;
      opt.inner.init = init;
      opt.inner.window_scan = window_scan;
      opt.inner.num_threads = threads;
      opt.inner.fork_depth = fork_depth;
      opt.inner.exec = exec;
      FastResult res = decompose_fast(g, in.weights, opt);
      chi = std::move(res.coloring);
      balance = res.balance;
      max_b = res.max_boundary;
      avg_b = res.avg_boundary;
      seconds = res.total_seconds;
      degraded = res.degraded;
      if (degraded)
        std::fprintf(stderr,
                     "warning: deadline expired after the coarse level; "
                     "result is best-effort (not strictly balanced)\n");
    } else {
      DecomposeOptions opt;
      opt.k = k;
      opt.p = p;
      opt.splitter = splitter;
      opt.init = init;
      opt.window_scan = window_scan;
      opt.num_threads = threads;
      opt.fork_depth = fork_depth;
      opt.exec = exec;
      DecomposeResult res = decompose(g, in.weights, opt);
      chi = std::move(res.coloring);
      balance = res.balance;
      max_b = res.max_boundary;
      avg_b = res.avg_boundary;
      seconds = res.total_seconds;
    }

    // Certificate check FIRST: with --verify no output file is ever
    // written from an uncertified coloring.
    bool verify_ok = true;
    if (verify) {
      const VerifyReport rep = verify_decomposition(g, in.weights, chi);
      verify_ok = rep.ok;
      std::printf("verify: %s", rep.ok ? "OK" : "FAILED");
      for (const auto& f : rep.failures) std::printf("\n  - %s", f.c_str());
      std::printf(" (%d classes, %d fragmented)\n", rep.nonempty_classes,
                  rep.fragmented_classes);
    }
    if (verify_ok) {
      if (!output.empty()) write_partition_file(chi, output);
      if (!image.empty()) write_coloring_ppm(g, chi, image);
    }

    if (!quiet) {
      Table table("mmd_partition " + input,
                  {"method", "max boundary", "avg boundary", "max |dev|",
                   "strict", "time s"});
      table.add_row({fast ? "minmax-decomp (fast)" : "minmax-decomp",
                     Table::num(max_b, 2), Table::num(avg_b, 2),
                     Table::num(balance.max_dev, 3),
                     balance.strictly_balanced ? "yes" : "NO",
                     Table::num(seconds, 3)});
      if (compare) {
        const Coloring greedy =
            greedy_coloring(g, in.weights, k, GreedyOrder::HeaviestFirst);
        const auto grep = balance_report(in.weights, greedy);
        table.add_row({"greedy LPT",
                       Table::num(max_boundary_cost(g, greedy), 2),
                       Table::num(avg_boundary_cost(g, greedy), 2),
                       Table::num(grep.max_dev, 3),
                       grep.strictly_balanced ? "yes" : "NO", "-"});
        PrefixSplitter ps;
        const Coloring rb = recursive_bisection(g, in.weights, k, ps);
        const auto rrep = balance_report(in.weights, rb);
        table.add_row({"recursive bisection",
                       Table::num(max_boundary_cost(g, rb), 2),
                       Table::num(avg_boundary_cost(g, rb), 2),
                       Table::num(rrep.max_dev, 3),
                       rrep.strictly_balanced ? "yes" : "NO", "-"});
      }
      table.print();
      std::printf("n=%d m=%d k=%d strict window (1-1/k)||w||_inf = %.4f\n",
                  g.num_vertices(), g.num_edges(), k, balance.strict_bound);
    }
    if (degraded) return 3;            // deadline, best-effort result
    if (!verify_ok) return 4;          // our own certificate failed
    return balance.strictly_balanced ? 0 : 1;
  } catch (const DeadlineExceeded& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (const Cancelled& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (const InvariantViolation& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 4;
  } catch (const std::invalid_argument& e) {
    // ParseError (malformed graph file, with its line number) and every
    // other bad-input MMD_REQUIRE land here.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 4;
  }
}
