// trace_replay — synthetic production trace against PartitionService.
//
//   trace_replay [out.json] [--label <s>] [--requests <n>] [--clients <n>]
//                [--graphs <n>] [--workers <n>] [--budget-kb <kb>]
//                [--zipf <alpha>] [--seed <s>]
//   trace_replay [out.json] --drift [--steps <n>] [--label <s>] [--seed <s>]
//
// Drives the service the way a real embedding would and measures what a
// real embedding cares about:
//
//   * a fleet of 2-D grid graphs with mixed edge-cost models, popularity
//     Zipf(alpha)-distributed — a few hot graphs dominate, a long tail of
//     cold ones exercises the LRU byte budget,
//   * mixed k (2..16), mixed mode (~1/8 fast), and occasional custom
//     heavy-tailed weight vectors — the batching sweet spot: same graph,
//     different request parameters, one warm context,
//   * bursty arrivals: clients fire back to back with occasional jittered
//     gaps, so rounds see real backlogs,
//   * and, after the run, a *serial oracle replay*: every request is
//     recomputed with a fresh transient decompose/decompose_fast call and
//     the service's response must be bit-identical (coloring bytes) with
//     max_boundary_vs_seed == 0 — the service layer may never change a
//     result, only its latency.  Any mismatch makes the exit code
//     nonzero.
//
// Results (requests/sec, p50/p95/p99/max latency, cache hit rate,
// evictions, batching counters, oracle verdict) land in the output JSON
// (default BENCH_PR7.json), one flat object, CI-artifact-ready.
//
// --drift switches to the weight-drift trajectory suite (PR 8): two
// scenarios — random-walk (each step nudges ~1% of vertex weights) and
// hotspot (a contiguous band flash-crowds to 8x while old hotspots decay)
// — replayed as `repartition` requests against the service, each step
// raced against a warm-context full recompute of the same weights.  Every
// served coloring must pass verify_decomposition; full-recompute steps
// (the cold bind and every escalation) must be bit-identical to both the
// warm rival and a transient cold decompose; incremental steps must stay
// inside the boundary-growth envelope.  Per-step rows (timings, migration
// fraction, escalation flags) land in BENCH_PR8.json by default; any
// correctness failure makes the exit code nonzero.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/context.hpp"
#include "core/fast.hpp"
#include "core/verify.hpp"
#include "gen/grid.hpp"
#include "io/strict_parse.hpp"
#include "service/jsonl.hpp"
#include "service/partition_service.hpp"
#include "util/latency.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

namespace {

using namespace mmd;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [out.json] [--label <s>] [--requests <n>]\n"
               "       [--clients <n>] [--graphs <n>] [--workers <n>]\n"
               "       [--budget-kb <kb>] [--zipf <alpha>] [--seed <s>]\n"
               "       %s [out.json] --drift [--steps <n>] [--label <s>]"
               " [--seed <s>]\n",
               argv0, argv0);
  std::exit(2);
}

// Both bench modes stamp the machine shape into the output so merged
// BENCH_*.json artifacts from different runners stay comparable.
const char* build_type() {
#ifdef NDEBUG
  return "Release";
#else
  return "Debug";
#endif
}

long host_cores() {
  return static_cast<long>(std::thread::hardware_concurrency());
}

struct TraceItem {
  int graph = 0;        ///< index into the fleet
  RequestMode mode = RequestMode::Decompose;
  int k = 2;
  int weight_variant = 0;  ///< 0 = graph default, else alt vector index
  bool gap_after = false;  ///< client sleeps briefly after this request
};

struct GraphInstance {
  std::string name;
  Graph graph;
  std::vector<std::vector<double>> alt_weights;  ///< heavy-tailed variants
};

// ---- weight-drift trajectory suite (--drift) -------------------------------

struct DriftRow {
  const char* scenario = "";
  int side = 0;
  int step = 0;
  int n = 0;
  int k = 0;
  long num_deltas = 0;
  double inc_ms = 0.0;   ///< service repartition request
  double full_ms = 0.0;  ///< warm-context full recompute of the same weights
  long migration_cost = -1;
  double migration_fraction = 0.0;
  bool incremental = false;
  bool escalated = false;
  double max_boundary_inc = 0.0;
  double max_boundary_full = 0.0;
};

bool same_coloring(const Coloring& a, const Coloring& b) {
  return a.k == b.k && a.color == b.color;
}

int run_drift(const std::string& out_path, const std::string& label, int steps,
              std::uint64_t seed) {
  const int kK = 8;
  const int sides[] = {32, 48};
  const char* scenarios[] = {"random_walk", "hotspot"};

  std::vector<DriftRow> rows;
  long verify_failures = 0;
  long bitwise_mismatches = 0;
  long envelope_violations = 0;
  long error_responses = 0;
  double max_boundary_vs_seed = 0.0;  // full-recompute rows vs transient cold

  PartitionServiceOptions so;
  so.num_workers = 1;
  PartitionService service(so);

  for (int si = 0; si < 2; ++si) {
    const char* const scenario = scenarios[si];
    for (const int side : sides) {
      CostParams costs;
      costs.model = CostModel::Uniform;
      costs.lo = 1.0;
      costs.hi = 8.0;
      costs.seed = seed ^ static_cast<std::uint64_t>(side);
      const Graph g = make_grid_cube(2, side, costs);
      const int n = g.num_vertices();
      const std::string name = std::string("drift-") + scenario + "-" +
                               std::to_string(side);
      // Mirror of the chain's weights, advanced in lockstep with the
      // deltas we send, so the full-recompute rival and the verifier see
      // exactly the weights the service's context holds.
      std::vector<double> w(static_cast<std::size_t>(n), 1.0);
      service.load_graph(name, Graph(g), w);

      DecomposeOptions opt;
      opt.k = kK;
      // The rival: a warm context re-solving from scratch every step —
      // what an embedding without the repartition path would have to pay.
      DecomposeContext full_ctx(g, opt);

      Rng rng(seed ^ (static_cast<std::uint64_t>(side) << 16) ^
              static_cast<std::uint64_t>(si));
      double last_full_boundary = 0.0;

      // Step 0 sends no deltas: the first repartition binds the chain's
      // base weights and serves the full cold solve the chain seeds from.
      for (int step = 0; step <= steps; ++step) {
        std::vector<WeightDelta> deltas;
        if (step > 0 && si == 0) {
          // Random walk: a contiguous ~1% id window drifts gently.  Grid
          // ids are row-major, so the window is a spatial strip touching
          // one or two classes — the dirty region stays small and most
          // steps ride the incremental path, with the occasional balance
          // escalation when the per-class random walk crosses the strict
          // window.  (Scattering the same deltas uniformly would touch
          // every class and trip the dirty-fraction certificate each
          // step.)
          const int num = std::max(1, n / 100);
          const int start = static_cast<int>(
              rng.next_below(static_cast<std::uint64_t>(n - num)));
          for (int v = start; v < start + num; ++v) {
            const auto uv = static_cast<std::size_t>(v);
            double nw = w[uv] * std::exp(rng.uniform(-0.1, 0.1));
            nw = std::clamp(nw, 0.8, 1.25);
            deltas.push_back({static_cast<Vertex>(v), nw});
            w[uv] = nw;
          }
        } else if (step > 0) {
          // Hotspot flash crowd: a contiguous id band spikes to 8x while
          // every previously spiked vertex decays geometrically back
          // toward 1.0 (snapped once it is within 5%).
          const int band = std::max(1, n / 16);
          const int start = static_cast<int>(
              (static_cast<long>(step - 1) * band * 3) %
              std::max(1, n - band));
          for (int v = 0; v < n; ++v) {
            const auto uv = static_cast<std::size_t>(v);
            if (v >= start && v < start + band) {
              if (w[uv] != 8.0) {
                deltas.push_back({static_cast<Vertex>(v), 8.0});
                w[uv] = 8.0;
              }
            } else if (w[uv] != 1.0) {
              double nw = 1.0 + (w[uv] - 1.0) * 0.7;
              if (std::abs(nw - 1.0) < 0.05) nw = 1.0;
              deltas.push_back({static_cast<Vertex>(v), nw});
              w[uv] = nw;
            }
          }
        }

        ServiceRequest req;
        req.graph = name;
        req.mode = RequestMode::Repartition;
        req.options.k = kK;
        req.deltas = deltas;
        Timer ti;
        const ServiceResponse resp = service.execute(req);
        const double inc_ms = ti.seconds() * 1e3;
        if (!resp.ok()) {
          ++error_responses;
          continue;
        }

        Timer tf;
        const DecomposeResult full = full_ctx.decompose(w);
        const double full_ms = tf.seconds() * 1e3;

        // Every served coloring — incremental or not — must certify.
        const VerifyReport rep = verify_decomposition(g, w, resp.coloring);
        if (!rep.ok) ++verify_failures;

        if (!resp.incremental) {
          // Full-recompute rows (the cold bind and every escalation) may
          // not differ from a solve without a prior in any byte: the warm
          // rival and a transient cold call must both match exactly.
          if (!same_coloring(resp.coloring, full.coloring))
            ++bitwise_mismatches;
          const DecomposeResult cold = decompose(g, w, opt);
          if (!same_coloring(resp.coloring, cold.coloring))
            ++bitwise_mismatches;
          const double diff = std::abs(resp.max_boundary - cold.max_boundary);
          if (diff > max_boundary_vs_seed) max_boundary_vs_seed = diff;
          last_full_boundary = resp.max_boundary;
        } else if (resp.max_boundary >
                   opt.incremental.max_boundary_growth * last_full_boundary +
                       1e-9) {
          ++envelope_violations;
        }

        DriftRow row;
        row.scenario = scenario;
        row.side = side;
        row.step = step;
        row.n = n;
        row.k = kK;
        row.num_deltas = static_cast<long>(deltas.size());
        row.inc_ms = inc_ms;
        row.full_ms = full_ms;
        row.migration_cost = resp.migration_cost;
        row.migration_fraction =
            resp.migration_cost >= 0
                ? static_cast<double>(resp.migration_cost) / n
                : 0.0;
        row.incremental = resp.incremental;
        row.escalated = resp.escalated;
        row.max_boundary_inc = resp.max_boundary;
        row.max_boundary_full = full.max_boundary;
        rows.push_back(row);
      }
    }
  }

  // Aggregate the headline numbers: how much the incremental path saves
  // when it is served, and how often drift forces a full solve.
  long incremental_rows = 0;
  long escalated_rows = 0;
  std::vector<double> inc_speedups;
  for (const DriftRow& r : rows) {
    if (r.escalated) ++escalated_rows;
    if (r.incremental) {
      ++incremental_rows;
      if (r.inc_ms > 0.0) inc_speedups.push_back(r.full_ms / r.inc_ms);
    }
  }
  double median_speedup = 0.0;
  if (!inc_speedups.empty()) {
    std::sort(inc_speedups.begin(), inc_speedups.end());
    median_speedup = inc_speedups[inc_speedups.size() / 2];
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 2;
  }
  jsonl::Writer head;
  head.add("bench", "drift_replay")
      .add("label", label)
      .add("host_cores", host_cores())
      .add("build_type", build_type())
      .add("steps", static_cast<long>(steps))
      .add("rows_total", static_cast<long>(rows.size()))
      .add("incremental_rows", incremental_rows)
      .add("escalated_rows", escalated_rows)
      .add("median_incremental_speedup", median_speedup)
      .add("verify_failures", verify_failures)
      .add("bitwise_mismatches", bitwise_mismatches)
      .add("envelope_violations", envelope_violations)
      .add("error_responses", error_responses)
      .add("max_boundary_vs_seed", max_boundary_vs_seed);
  const std::string head_json = head.str();
  // One flat summary object plus a rows array: the same envelope shape as
  // bench_runner, so bench_merge-style consumers can read either.
  std::fprintf(f, "{\"summary\":%s,\n \"rows\":[\n", head_json.c_str());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const DriftRow& r = rows[i];
    jsonl::Writer wr;
    wr.add("scenario", r.scenario)
        .add("side", static_cast<long>(r.side))
        .add("step", static_cast<long>(r.step))
        .add("n", static_cast<long>(r.n))
        .add("k", static_cast<long>(r.k))
        .add("num_deltas", r.num_deltas)
        .add("inc_ms", r.inc_ms)
        .add("full_ms", r.full_ms)
        .add("speedup", r.inc_ms > 0.0 ? r.full_ms / r.inc_ms : 0.0)
        .add("migration_cost", r.migration_cost)
        .add("migration_fraction", r.migration_fraction)
        .add("incremental", r.incremental)
        .add("escalated", r.escalated)
        .add("max_boundary_inc", r.max_boundary_inc)
        .add("max_boundary_full", r.max_boundary_full)
        .add("host_cores", host_cores())
        .add("build_type", build_type());
    std::fprintf(f, "  %s%s\n", wr.str().c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("%s\n", head_json.c_str());

  if (verify_failures > 0 || bitwise_mismatches > 0 ||
      envelope_violations > 0 || error_responses > 0) {
    std::fprintf(stderr,
                 "FAIL: %ld verify failures, %ld bitwise mismatches, "
                 "%ld envelope violations, %ld error responses\n",
                 verify_failures, bitwise_mismatches, envelope_violations,
                 error_responses);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_PR7.json";
  std::string label = "pr7-trace";
  int num_requests = 200;
  int num_clients = 4;
  int num_graphs = 6;
  int num_workers = 2;
  long budget_kb = 256;
  double zipf_alpha = 1.1;
  std::uint64_t seed = 0x7ace;
  bool drift = false;
  int steps = 24;

  bool saw_out = false;
  bool saw_label = false;
  // Strict numeric argument parsing (io/strict_parse.hpp, the METIS
  // reader's hardened path): a malformed value is bad usage (exit 2),
  // never a silently adopted 0 — `--zipf garbage` used to atof() to
  // alpha = 0.0 and replay a uniform trace without a word.
  auto parse_int_arg = [&](const char* tok, const char* what) -> int {
    try {
      return parse_i32(tok, 0, what);
    } catch (const ParseError&) {
      std::fprintf(stderr, "error: malformed %s '%s'\n", what, tok);
      usage(argv[0]);
    }
  };
  auto parse_long_arg = [&](const char* tok, const char* what) -> long {
    try {
      return static_cast<long>(parse_ll(tok, 0, what));
    } catch (const ParseError&) {
      std::fprintf(stderr, "error: malformed %s '%s'\n", what, tok);
      usage(argv[0]);
    }
  };
  auto parse_double_arg = [&](const char* tok, const char* what) -> double {
    try {
      return parse_finite_double(tok, 0, what);
    } catch (const ParseError&) {
      std::fprintf(stderr, "error: malformed %s '%s'\n", what, tok);
      usage(argv[0]);
    }
  };
  auto parse_seed_arg = [&](const char* tok) -> std::uint64_t {
    errno = 0;  // strtoull with base 0 keeps hex seeds working
    char* end = nullptr;
    const unsigned long long v = std::strtoull(tok, &end, 0);
    if (end == tok || *end != '\0' || errno == ERANGE) {
      std::fprintf(stderr, "error: malformed --seed '%s'\n", tok);
      usage(argv[0]);
    }
    return v;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--label") { label = next(); saw_label = true; }
    else if (arg == "--requests") num_requests = parse_int_arg(next(), "--requests");
    else if (arg == "--clients") num_clients = parse_int_arg(next(), "--clients");
    else if (arg == "--graphs") num_graphs = parse_int_arg(next(), "--graphs");
    else if (arg == "--workers") num_workers = parse_int_arg(next(), "--workers");
    else if (arg == "--budget-kb") budget_kb = parse_long_arg(next(), "--budget-kb");
    else if (arg == "--zipf") zipf_alpha = parse_double_arg(next(), "--zipf");
    else if (arg == "--seed") seed = parse_seed_arg(next());
    else if (arg == "--drift") drift = true;
    else if (arg == "--steps") steps = parse_int_arg(next(), "--steps");
    else if (arg[0] == '-') usage(argv[0]);
    else if (!saw_out) { out_path = arg; saw_out = true; }
    else usage(argv[0]);
  }
  if (num_requests < 1 || num_clients < 1 || num_graphs < 1 ||
      num_workers < 1 || budget_kb < 0 || steps < 1)
    usage(argv[0]);
  if (zipf_alpha < 0.0 || zipf_alpha > 64.0) {
    // Negative alpha inverts the popularity ranking (and overflows pow for
    // large fleets); absurdly large alpha degenerates every draw to graph
    // 0 through rounding.  Both are certainly typos — reject them.
    std::fprintf(stderr, "error: --zipf alpha must lie in [0, 64]\n");
    usage(argv[0]);
  }

  if (drift) {
    if (!saw_out) out_path = "BENCH_PR8.json";
    if (!saw_label) label = "pr8-drift";
    return run_drift(out_path, label, steps, seed);
  }

  Rng rng(seed);

  // ---- the graph fleet -----------------------------------------------------
  // 2-D grids of mixed size and edge-cost model; index 0 (the Zipf head)
  // gets the largest instance so the hot path is also the heavy one.
  const CostModel models[] = {CostModel::Unit, CostModel::Uniform,
                              CostModel::LogUniform, CostModel::SmoothField,
                              CostModel::Bands};
  std::vector<GraphInstance> fleet;
  fleet.reserve(static_cast<std::size_t>(num_graphs));
  for (int gi = 0; gi < num_graphs; ++gi) {
    CostParams costs;
    costs.model = models[gi % 5];
    costs.lo = 1.0;
    costs.hi = costs.model == CostModel::Unit ? 1.0 : 8.0;
    costs.seed = seed + static_cast<std::uint64_t>(gi);
    const int side = 28 - 3 * (gi % 6);  // 28, 25, ..., 13, then repeat
    GraphInstance inst;
    inst.name = "g" + std::to_string(gi);
    inst.graph = make_grid_cube(2, side, costs);
    const auto n = static_cast<std::size_t>(inst.graph.num_vertices());
    for (int variant = 0; variant < 2; ++variant) {
      // Heavy-tailed weights: exp(U[0, 4]) spans ~1..55, the regime where
      // strict balance actually has to work.
      std::vector<double> w(n);
      Rng wr(seed ^ (static_cast<std::uint64_t>(gi) << 8) ^
             static_cast<std::uint64_t>(variant));
      for (double& x : w) x = std::exp(wr.uniform(0.0, 4.0));
      inst.alt_weights.push_back(std::move(w));
    }
    fleet.push_back(std::move(inst));
  }

  // Zipf CDF over the fleet: P(i) ~ 1 / (i + 1)^alpha.
  std::vector<double> zipf_cdf(fleet.size());
  {
    double total = 0.0;
    for (std::size_t i = 0; i < fleet.size(); ++i)
      total += 1.0 / std::pow(static_cast<double>(i + 1), zipf_alpha);
    // An empty fleet or a non-positive/non-finite mass means the draw
    // below is meaningless; the final back() = 1.0 snap used to paper
    // over exactly this (a degenerate distribution replayed as "all
    // requests hit the last graph" without a word).
    if (fleet.empty() || !std::isfinite(total) || total <= 0.0) {
      std::fprintf(stderr,
                   "error: degenerate zipf distribution (graphs=%d, "
                   "alpha=%g)\n",
                   num_graphs, zipf_alpha);
      return 2;
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), zipf_alpha) / total;
      zipf_cdf[i] = acc;
    }
    // Guard the top bucket against accumulated rounding only — by here the
    // mass is certified finite and positive, so this is a snap of an
    // 1 - 1e-16 tail, not a mask for a degenerate distribution.
    zipf_cdf.back() = 1.0;
  }

  // ---- the trace -----------------------------------------------------------
  // Generated up front (and deterministically) so the oracle replay below
  // re-executes exactly the same work.
  const int ks[] = {2, 3, 4, 8, 16};
  std::vector<TraceItem> trace(static_cast<std::size_t>(num_requests));
  for (TraceItem& item : trace) {
    const double u = rng.uniform();
    item.graph = static_cast<int>(
        std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(), u) -
        zipf_cdf.begin());
    item.k = ks[rng.next_below(5)];
    item.mode = rng.next_below(8) == 0 ? RequestMode::Fast
                                       : RequestMode::Decompose;
    item.weight_variant =
        rng.next_below(4) == 0 ? 1 + static_cast<int>(rng.next_below(2)) : 0;
    item.gap_after = rng.next_below(16) == 0;  // burst boundary
  }

  // ---- the run -------------------------------------------------------------
  PartitionServiceOptions so;
  so.context_budget_bytes = static_cast<std::size_t>(budget_kb) << 10;
  so.num_workers = num_workers;
  PartitionService service(so);
  for (const GraphInstance& inst : fleet) {
    // Explicit all-ones default weights, so the oracle replay below can
    // reconstruct them without consulting the service.
    service.load_graph(
        inst.name, Graph(inst.graph),
        std::vector<double>(static_cast<std::size_t>(inst.graph.num_vertices()),
                            1.0));
  }

  std::vector<ServiceResponse> responses(trace.size());
  std::vector<LatencyRecorder> client_latency(
      static_cast<std::size_t>(num_clients));
  std::atomic<std::size_t> next_item{0};

  Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(num_clients));
  for (int ci = 0; ci < num_clients; ++ci) {
    clients.emplace_back([&, ci] {
      Rng jitter(seed ^ 0xc11e47 ^ static_cast<std::uint64_t>(ci));
      while (true) {
        const std::size_t idx = next_item.fetch_add(1);
        if (idx >= trace.size()) break;
        const TraceItem& item = trace[idx];
        const GraphInstance& inst = fleet[static_cast<std::size_t>(item.graph)];
        ServiceRequest req;
        req.graph = inst.name;
        req.mode = item.mode;
        req.options.k = item.k;
        if (item.weight_variant > 0)
          req.weights = inst.alt_weights[static_cast<std::size_t>(
              item.weight_variant - 1)];
        Timer t;
        responses[idx] = service.execute(req);
        client_latency[static_cast<std::size_t>(ci)].record(t.seconds());
        if (item.gap_after)
          std::this_thread::sleep_for(
              std::chrono::microseconds(jitter.next_below(2000)));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed = wall.seconds();
  const ServiceStats stats = service.stats();

  LatencyRecorder latency;
  for (const LatencyRecorder& lr : client_latency) latency.merge(lr);

  // ---- serial oracle replay ------------------------------------------------
  // A fresh transient call per request: the strongest form of "the service
  // only changes latency" — no shared contexts, no cache, no threads.
  long mismatches = 0;
  long error_responses = 0;
  double max_boundary_vs_seed = 0.0;
  for (std::size_t idx = 0; idx < trace.size(); ++idx) {
    const TraceItem& item = trace[idx];
    const ServiceResponse& got = responses[idx];
    if (!got.ok()) {
      // The trace sets no deadlines and no bad parameters, so every
      // response must be Ok; anything else is a service bug.
      ++error_responses;
      continue;
    }
    const GraphInstance& inst = fleet[static_cast<std::size_t>(item.graph)];
    const std::vector<double> default_w(
        static_cast<std::size_t>(inst.graph.num_vertices()), 1.0);
    const std::span<const double> w =
        item.weight_variant > 0
            ? std::span<const double>(inst.alt_weights[static_cast<std::size_t>(
                  item.weight_variant - 1)])
            : std::span<const double>(default_w);
    Coloring expect;
    double expect_max_boundary = 0.0;
    if (item.mode == RequestMode::Decompose) {
      DecomposeOptions opt;
      opt.k = item.k;
      DecomposeResult r = decompose(inst.graph, w, opt);
      expect = std::move(r.coloring);
      expect_max_boundary = r.max_boundary;
    } else {
      FastOptions opt;
      opt.inner.k = item.k;
      FastResult r = decompose_fast(inst.graph, w, opt);
      expect = std::move(r.coloring);
      expect_max_boundary = r.max_boundary;
    }
    const bool identical =
        expect.k == got.coloring.k && expect.color == got.coloring.color;
    if (!identical) ++mismatches;
    const double diff = std::abs(got.max_boundary - expect_max_boundary);
    if (diff > max_boundary_vs_seed) max_boundary_vs_seed = diff;
  }

  // ---- report --------------------------------------------------------------
  jsonl::Writer w;
  w.add("bench", "trace_replay")
      .add("label", label)
      .add("host_cores", host_cores())
      .add("build_type", build_type())
      .add("requests", static_cast<long>(num_requests))
      .add("clients", static_cast<long>(num_clients))
      .add("graphs", static_cast<long>(num_graphs))
      .add("workers", static_cast<long>(num_workers))
      .add("budget_kb", budget_kb)
      .add("zipf_alpha", zipf_alpha)
      .add("elapsed_seconds", elapsed)
      .add("requests_per_sec",
           elapsed > 0.0 ? static_cast<double>(num_requests) / elapsed : 0.0)
      .add("p50_ms", latency.percentile(0.50) * 1e3)
      .add("p95_ms", latency.percentile(0.95) * 1e3)
      .add("p99_ms", latency.percentile(0.99) * 1e3)
      .add("max_ms", latency.max() * 1e3)
      .add("cache_hits", stats.cache_hits)
      .add("cache_misses", stats.cache_misses)
      .add("cache_hit_rate", stats.hit_rate())
      .add("context_evictions", stats.context_evictions)
      .add("rounds", stats.rounds)
      .add("batched_requests", stats.batched_requests)
      .add("error_responses", error_responses)
      .add("oracle_mismatches", mismatches)
      .add("max_boundary_vs_seed", max_boundary_vs_seed);
  const std::string json = w.str();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f, "%s\n", json.c_str());
  std::fclose(f);
  std::printf("%s\n", json.c_str());

  if (mismatches > 0 || error_responses > 0) {
    std::fprintf(stderr,
                 "FAIL: %ld oracle mismatches, %ld error responses\n",
                 mismatches, error_responses);
    return 1;
  }
  return 0;
}
