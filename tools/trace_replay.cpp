// trace_replay — synthetic production trace against PartitionService.
//
//   trace_replay [out.json] [--label <s>] [--requests <n>] [--clients <n>]
//                [--graphs <n>] [--workers <n>] [--budget-kb <kb>]
//                [--zipf <alpha>] [--seed <s>]
//
// Drives the service the way a real embedding would and measures what a
// real embedding cares about:
//
//   * a fleet of 2-D grid graphs with mixed edge-cost models, popularity
//     Zipf(alpha)-distributed — a few hot graphs dominate, a long tail of
//     cold ones exercises the LRU byte budget,
//   * mixed k (2..16), mixed mode (~1/8 fast), and occasional custom
//     heavy-tailed weight vectors — the batching sweet spot: same graph,
//     different request parameters, one warm context,
//   * bursty arrivals: clients fire back to back with occasional jittered
//     gaps, so rounds see real backlogs,
//   * and, after the run, a *serial oracle replay*: every request is
//     recomputed with a fresh transient decompose/decompose_fast call and
//     the service's response must be bit-identical (coloring bytes) with
//     max_boundary_vs_seed == 0 — the service layer may never change a
//     result, only its latency.  Any mismatch makes the exit code
//     nonzero.
//
// Results (requests/sec, p50/p95/p99/max latency, cache hit rate,
// evictions, batching counters, oracle verdict) land in the output JSON
// (default BENCH_PR7.json), one flat object, CI-artifact-ready.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/fast.hpp"
#include "gen/grid.hpp"
#include "service/jsonl.hpp"
#include "service/partition_service.hpp"
#include "util/latency.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

namespace {

using namespace mmd;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [out.json] [--label <s>] [--requests <n>]\n"
               "       [--clients <n>] [--graphs <n>] [--workers <n>]\n"
               "       [--budget-kb <kb>] [--zipf <alpha>] [--seed <s>]\n",
               argv0);
  std::exit(2);
}

struct TraceItem {
  int graph = 0;        ///< index into the fleet
  RequestMode mode = RequestMode::Decompose;
  int k = 2;
  int weight_variant = 0;  ///< 0 = graph default, else alt vector index
  bool gap_after = false;  ///< client sleeps briefly after this request
};

struct GraphInstance {
  std::string name;
  Graph graph;
  std::vector<std::vector<double>> alt_weights;  ///< heavy-tailed variants
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_PR7.json";
  std::string label = "pr7-trace";
  int num_requests = 200;
  int num_clients = 4;
  int num_graphs = 6;
  int num_workers = 2;
  long budget_kb = 256;
  double zipf_alpha = 1.1;
  std::uint64_t seed = 0x7ace;

  bool saw_out = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--label") label = next();
    else if (arg == "--requests") num_requests = std::atoi(next());
    else if (arg == "--clients") num_clients = std::atoi(next());
    else if (arg == "--graphs") num_graphs = std::atoi(next());
    else if (arg == "--workers") num_workers = std::atoi(next());
    else if (arg == "--budget-kb") budget_kb = std::atol(next());
    else if (arg == "--zipf") zipf_alpha = std::atof(next());
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 0);
    else if (arg[0] == '-') usage(argv[0]);
    else if (!saw_out) { out_path = arg; saw_out = true; }
    else usage(argv[0]);
  }
  if (num_requests < 1 || num_clients < 1 || num_graphs < 1 ||
      num_workers < 1 || budget_kb < 0)
    usage(argv[0]);

  Rng rng(seed);

  // ---- the graph fleet -----------------------------------------------------
  // 2-D grids of mixed size and edge-cost model; index 0 (the Zipf head)
  // gets the largest instance so the hot path is also the heavy one.
  const CostModel models[] = {CostModel::Unit, CostModel::Uniform,
                              CostModel::LogUniform, CostModel::SmoothField,
                              CostModel::Bands};
  std::vector<GraphInstance> fleet;
  fleet.reserve(static_cast<std::size_t>(num_graphs));
  for (int gi = 0; gi < num_graphs; ++gi) {
    CostParams costs;
    costs.model = models[gi % 5];
    costs.lo = 1.0;
    costs.hi = costs.model == CostModel::Unit ? 1.0 : 8.0;
    costs.seed = seed + static_cast<std::uint64_t>(gi);
    const int side = 28 - 3 * (gi % 6);  // 28, 25, ..., 13, then repeat
    GraphInstance inst;
    inst.name = "g" + std::to_string(gi);
    inst.graph = make_grid_cube(2, side, costs);
    const auto n = static_cast<std::size_t>(inst.graph.num_vertices());
    for (int variant = 0; variant < 2; ++variant) {
      // Heavy-tailed weights: exp(U[0, 4]) spans ~1..55, the regime where
      // strict balance actually has to work.
      std::vector<double> w(n);
      Rng wr(seed ^ (static_cast<std::uint64_t>(gi) << 8) ^
             static_cast<std::uint64_t>(variant));
      for (double& x : w) x = std::exp(wr.uniform(0.0, 4.0));
      inst.alt_weights.push_back(std::move(w));
    }
    fleet.push_back(std::move(inst));
  }

  // Zipf CDF over the fleet: P(i) ~ 1 / (i + 1)^alpha.
  std::vector<double> zipf_cdf(fleet.size());
  {
    double total = 0.0;
    for (std::size_t i = 0; i < fleet.size(); ++i)
      total += 1.0 / std::pow(static_cast<double>(i + 1), zipf_alpha);
    double acc = 0.0;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), zipf_alpha) / total;
      zipf_cdf[i] = acc;
    }
    zipf_cdf.back() = 1.0;
  }

  // ---- the trace -----------------------------------------------------------
  // Generated up front (and deterministically) so the oracle replay below
  // re-executes exactly the same work.
  const int ks[] = {2, 3, 4, 8, 16};
  std::vector<TraceItem> trace(static_cast<std::size_t>(num_requests));
  for (TraceItem& item : trace) {
    const double u = rng.uniform();
    item.graph = static_cast<int>(
        std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(), u) -
        zipf_cdf.begin());
    item.k = ks[rng.next_below(5)];
    item.mode = rng.next_below(8) == 0 ? RequestMode::Fast
                                       : RequestMode::Decompose;
    item.weight_variant =
        rng.next_below(4) == 0 ? 1 + static_cast<int>(rng.next_below(2)) : 0;
    item.gap_after = rng.next_below(16) == 0;  // burst boundary
  }

  // ---- the run -------------------------------------------------------------
  PartitionServiceOptions so;
  so.context_budget_bytes = static_cast<std::size_t>(budget_kb) << 10;
  so.num_workers = num_workers;
  PartitionService service(so);
  for (const GraphInstance& inst : fleet) {
    // Explicit all-ones default weights, so the oracle replay below can
    // reconstruct them without consulting the service.
    service.load_graph(
        inst.name, Graph(inst.graph),
        std::vector<double>(static_cast<std::size_t>(inst.graph.num_vertices()),
                            1.0));
  }

  std::vector<ServiceResponse> responses(trace.size());
  std::vector<LatencyRecorder> client_latency(
      static_cast<std::size_t>(num_clients));
  std::atomic<std::size_t> next_item{0};

  Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(num_clients));
  for (int ci = 0; ci < num_clients; ++ci) {
    clients.emplace_back([&, ci] {
      Rng jitter(seed ^ 0xc11e47 ^ static_cast<std::uint64_t>(ci));
      while (true) {
        const std::size_t idx = next_item.fetch_add(1);
        if (idx >= trace.size()) break;
        const TraceItem& item = trace[idx];
        const GraphInstance& inst = fleet[static_cast<std::size_t>(item.graph)];
        ServiceRequest req;
        req.graph = inst.name;
        req.mode = item.mode;
        req.options.k = item.k;
        if (item.weight_variant > 0)
          req.weights = inst.alt_weights[static_cast<std::size_t>(
              item.weight_variant - 1)];
        Timer t;
        responses[idx] = service.execute(req);
        client_latency[static_cast<std::size_t>(ci)].record(t.seconds());
        if (item.gap_after)
          std::this_thread::sleep_for(
              std::chrono::microseconds(jitter.next_below(2000)));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed = wall.seconds();
  const ServiceStats stats = service.stats();

  LatencyRecorder latency;
  for (const LatencyRecorder& lr : client_latency) latency.merge(lr);

  // ---- serial oracle replay ------------------------------------------------
  // A fresh transient call per request: the strongest form of "the service
  // only changes latency" — no shared contexts, no cache, no threads.
  long mismatches = 0;
  long error_responses = 0;
  double max_boundary_vs_seed = 0.0;
  for (std::size_t idx = 0; idx < trace.size(); ++idx) {
    const TraceItem& item = trace[idx];
    const ServiceResponse& got = responses[idx];
    if (!got.ok()) {
      // The trace sets no deadlines and no bad parameters, so every
      // response must be Ok; anything else is a service bug.
      ++error_responses;
      continue;
    }
    const GraphInstance& inst = fleet[static_cast<std::size_t>(item.graph)];
    const std::vector<double> default_w(
        static_cast<std::size_t>(inst.graph.num_vertices()), 1.0);
    const std::span<const double> w =
        item.weight_variant > 0
            ? std::span<const double>(inst.alt_weights[static_cast<std::size_t>(
                  item.weight_variant - 1)])
            : std::span<const double>(default_w);
    Coloring expect;
    double expect_max_boundary = 0.0;
    if (item.mode == RequestMode::Decompose) {
      DecomposeOptions opt;
      opt.k = item.k;
      DecomposeResult r = decompose(inst.graph, w, opt);
      expect = std::move(r.coloring);
      expect_max_boundary = r.max_boundary;
    } else {
      FastOptions opt;
      opt.inner.k = item.k;
      FastResult r = decompose_fast(inst.graph, w, opt);
      expect = std::move(r.coloring);
      expect_max_boundary = r.max_boundary;
    }
    const bool identical =
        expect.k == got.coloring.k && expect.color == got.coloring.color;
    if (!identical) ++mismatches;
    const double diff = std::abs(got.max_boundary - expect_max_boundary);
    if (diff > max_boundary_vs_seed) max_boundary_vs_seed = diff;
  }

  // ---- report --------------------------------------------------------------
  jsonl::Writer w;
  w.add("bench", "trace_replay")
      .add("label", label)
      .add("requests", static_cast<long>(num_requests))
      .add("clients", static_cast<long>(num_clients))
      .add("graphs", static_cast<long>(num_graphs))
      .add("workers", static_cast<long>(num_workers))
      .add("budget_kb", budget_kb)
      .add("zipf_alpha", zipf_alpha)
      .add("elapsed_seconds", elapsed)
      .add("requests_per_sec",
           elapsed > 0.0 ? static_cast<double>(num_requests) / elapsed : 0.0)
      .add("p50_ms", latency.percentile(0.50) * 1e3)
      .add("p95_ms", latency.percentile(0.95) * 1e3)
      .add("p99_ms", latency.percentile(0.99) * 1e3)
      .add("max_ms", latency.max() * 1e3)
      .add("cache_hits", stats.cache_hits)
      .add("cache_misses", stats.cache_misses)
      .add("cache_hit_rate", stats.hit_rate())
      .add("context_evictions", stats.context_evictions)
      .add("rounds", stats.rounds)
      .add("batched_requests", stats.batched_requests)
      .add("error_responses", error_responses)
      .add("oracle_mismatches", mismatches)
      .add("max_boundary_vs_seed", max_boundary_vs_seed);
  const std::string json = w.str();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f, "%s\n", json.c_str());
  std::fclose(f);
  std::printf("%s\n", json.c_str());

  if (mismatches > 0 || error_responses > 0) {
    std::fprintf(stderr,
                 "FAIL: %ld oracle mismatches, %ld error responses\n",
                 mismatches, error_responses);
    return 1;
  }
  return 0;
}
