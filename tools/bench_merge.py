#!/usr/bin/env python3
"""Merge bench_runner JSONs (seed and current) into BENCH_PR1.json.

Usage: bench_merge.py seed.json[,seed2.json...] current.json[,cur2.json...] [out.json]

Each side accepts a comma-separated list of runner outputs; repeated runs
are combined row-wise by minimum time (best-of-N defeats scheduler noise).
Rows are matched on (suite, config, side, k).  For decompose rows the seed
reference is its "cold" time (the seed has no warm mode distinct from
cold); speedups are reported for both the current cold and warm modes.
For refine rows the seed reference is its "sweep" engine.  For quality
suites (E13) the reference is the "default" sweep-mode row — the seed's
better-of-two rule run on the identical instance — taken from the current
side when the seed binary predates the suite, so "default" rows always
merge to max_boundary_vs_seed = 0 and "window"/"adaptive"/"orb" rows
report their quality delta against it.
"""
import json
import sys


def row_key(row):
    return (row["suite"], row["config"], row["side"], row["k"], row["mode"])


def ref_key(row):
    return (row["suite"], row["config"], row["side"], row["k"])


def load_min(paths):
    merged = {}
    label = None
    for path in paths.split(","):
        with open(path) as f:
            doc = json.load(f)
        label = label or doc.get("label")
        for row in doc["rows"]:
            k = row_key(row)
            if k not in merged or row["ms"] < merged[k]["ms"]:
                merged[k] = row
    return label, [merged[k] for k in merged]


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 1
    seed_label, seed_rows = load_min(sys.argv[1])
    cur_label, cur_rows = load_min(sys.argv[2])
    out_path = sys.argv[3] if len(sys.argv) > 3 else "BENCH_PR1.json"

    seed_ref = {}
    for row in seed_rows:
        if row["mode"] in ("cold", "sweep", "default"):
            seed_ref[ref_key(row)] = row
    # Quality suites reference their own "default" row when the seed binary
    # predates the suite (same instance, seed prefix rule, current binary).
    for row in cur_rows:
        if row["mode"] == "default" and ref_key(row) not in seed_ref:
            seed_ref[ref_key(row)] = row

    merged = []
    for row in cur_rows:
        ref = seed_ref.get(ref_key(row))
        entry = dict(row)
        if ref is not None:
            entry["seed_ms"] = ref["ms"]
            entry["seed_max_boundary"] = ref["max_boundary"]
            entry["speedup_vs_seed"] = round(ref["ms"] / row["ms"], 2) if row["ms"] > 0 else None
            entry["max_boundary_vs_seed"] = round(row["max_boundary"] - ref["max_boundary"], 3)
        merged.append(entry)

    doc = {
        "seed_label": seed_label or "seed",
        "current_label": cur_label or "current",
        "rows": merged,
    }
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {out_path} ({len(merged)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
