// Performance runner for the decompose/refine hot path.
//
// Emits one JSON document with minimum-of-reps wall times for
//   * the E6 runtime suite shapes: decompose on 2-D grids over growing n
//     (k = 16) and growing k (side 96), in the modes the library has
//     grown so far: "cold" (a fresh splitter per call, the seed's only
//     mode), "warm" (persistent splitter + DecomposeWorkspace, PR 1),
//     "ctx-warm" (a reused DecomposeContext, PR 2), "ctx-threads2/4/8"
//     (context with num_threads = 2/4/8; 4/8 drive the multi_split lane
//     tree at its auto fork depth, PR 5 — bit-identical boundaries by the
//     splitter contract, so their max_boundary_vs_seed must merge to 0),
//     "eval-incremental" (PR 4: the SweepEval engine in its default
//     better-of-two mode — the same rows as ctx-warm, named so the
//     candidate-evaluation rework is directly attributable), and
//     "eval-window" (PR 4: window_scan mode, cheapest prefix inside the
//     hard weight window — max_boundary_vs_seed <= 0 expected everywhere).
//     Besides the unit-weight n/k sweeps, a few heavy-tailed weighted
//     grids (w-sweep-h*) exercise the wide-window regime where the
//     window rule actually has candidates to choose from;
//   * the fast multilevel mode on the mid-size grids where per-split
//     constants dominate: "cold" (decompose_fast from scratch, as the
//     seed runs it), "fast-ctx-warm" (a reused FastContext: cached
//     hierarchy + warm coarse context + persistent finest-level splitter,
//     PR 3), and "fast-threads2/4/8" (FastContext with inner.num_threads
//     = 2/4/8, again bit-identical by construction);
//   * a min-max refinement microbench on random colorings, per engine.
//
// The same source compiles against the seed tree (which predates
// DecomposeWorkspace, RefineEngine, and DecomposeContext); the extra
// modes are feature-detected so before/after JSONs can be produced with
// one binary each and merged by tools/bench_merge.py into BENCH_*.json.
//
// PR 9 adds the E12 huge-graph suite (--e12 / --e12-smoke): 10M+-vertex
// grids and triangulated meshes plus a METIS-file round trip through the
// streaming reader, run in ascending size order with every row stamped
// with the process peak-RSS (util/rss.hpp) — the first bytes/edge and
// peak-memory trajectory of the compact CSR layout.
//
// PR 10 adds the E13 sweep-quality suite (--e13 / --e13-smoke): quality
// (not runtime) rows across the workload matrix where the prefix rule
// matters — triangulated meshes, the weighted climate instance, heavy-
// tailed meshes, anisotropic and 3-D geometric graphs, and a METIS-file
// round trip — in modes "default" / "window" / "adaptive" (SweepMode)
// plus an "orb" baseline column (orthogonal recursive coordinate
// bisection, the classical mesh-library default).
//
// Usage: bench_runner [output.json] [--label name]
//                     [--e12 | --e12-smoke | --e13 | --e13-smoke]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "baselines/random_part.hpp"
#include "baselines/recursive_bisection.hpp"
#include "core/decompose.hpp"
#include "core/refine.hpp"
#include "gen/geometric.hpp"
#include "gen/grid.hpp"
#include "gen/mesh.hpp"
#include "io/metis_io.hpp"
#include "util/timer.hpp"

// Seed trees predate util/rss.hpp; their rows carry peak_rss_bytes 0 (the
// merge keeps the current side's stamps).
#if __has_include("util/rss.hpp")
#define MMD_BENCH_HAS_RSS 1
#include "util/rss.hpp"
#endif

#if __has_include("core/workspace.hpp")
#define MMD_BENCH_HAS_WORKSPACE 1
#include "core/workspace.hpp"
#endif
#if __has_include("core/context.hpp")
#define MMD_BENCH_HAS_CONTEXT 1
#include "core/context.hpp"
#endif
#include "core/fast.hpp"  // seed and current both have the fast mode;
                          // MMD_HAS_FAST_CONTEXT marks the warm path

namespace {

using namespace mmd;

template <typename T, typename = void>
struct HasEngine : std::false_type {};
template <typename T>
struct HasEngine<T, std::void_t<decltype(T::engine)>> : std::true_type {};

// Detect DecomposeOptions::window_scan (PR 4's SweepEval modes) so one
// runner source still compiles against older trees.
template <typename T, typename = void>
struct HasWindowScan : std::false_type {};
template <typename T>
struct HasWindowScan<T, std::void_t<decltype(T::window_scan)>> : std::true_type {};

template <typename Opt>
auto set_window_scan(Opt& o, bool on, int) -> decltype((void)o.window_scan) {
  o.window_scan = on;
}
template <typename Opt>
void set_window_scan(Opt&, bool, long) {}

// Set the refinement engine when the library has one (overload ranking:
// the int overload wins when `o.engine` is well-formed).
template <typename Opt>
auto set_engine(Opt& o, bool worklist, int) -> decltype((void)o.engine) {
  o.engine = worklist ? decltype(o.engine)::Worklist : decltype(o.engine)::Sweep;
}
template <typename Opt>
void set_engine(Opt&, bool, long) {}

struct Row {
  std::string suite, config;
  int side = 0, n = 0, k = 0;
  std::string mode;
  double ms = 0.0;
  double max_boundary = 0.0;
  long moves = -1;
  std::size_t peak_rss = 0;     // stamped at push time (monotone)
  long long m = 0;              // edge count (E12 rows)
  std::size_t graph_bytes = 0;  // Graph::memory_bytes (E12 rows)
};

std::vector<Row> g_rows;

std::size_t process_peak_rss() {
#ifdef MMD_BENCH_HAS_RSS
  return peak_rss_bytes();
#else
  return 0;
#endif
}

/// All rows funnel through here so each carries the peak-RSS high-water
/// mark as of the moment it was measured.
void push_row(Row row) {
  row.peak_rss = process_peak_rss();
  g_rows.push_back(std::move(row));
}

int reps_for(int side) { return side >= 256 ? 7 : 9; }

/// Deterministic heavy-tailed vertex weights (LCG; ~1/8 of the vertices
/// carry weight `heavy`, the rest 1.0).  Inline so the seed binary and
/// the current binary bench the exact same instance: a wide hard window
/// (||w||_inf/2 = heavy/2) is where the window_scan prefix rule has room
/// to act, unlike the unit-weight sweeps whose window admits at most the
/// two crossing prefixes.
std::vector<double> heavy_weights(int n, double heavy, std::uint64_t seed) {
  std::vector<double> w(static_cast<std::size_t>(n), 1.0);
  std::uint64_t x = seed;
  for (int i = 0; i < n; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    if ((x >> 33) % 8 == 0) w[static_cast<std::size_t>(i)] = heavy;
  }
  return w;
}

/// `heavy` <= 0 benches the classic unit-weight instance.
void bench_decompose(const char* config, int side, int k, double heavy = 0.0) {
  const Graph g = make_grid_cube(2, side);
  const std::vector<double> w =
      heavy > 0.0
          ? heavy_weights(g.num_vertices(), heavy,
                          42ull + static_cast<std::uint64_t>(side + k))
          : std::vector<double>(static_cast<std::size_t>(g.num_vertices()), 1.0);
  DecomposeOptions opt;
  opt.k = k;
  const int reps = reps_for(side);

  Row cold{"decompose_grid2d", config, side, g.num_vertices(), k,
           "cold",            1e300,  0.0};
  for (int r = 0; r < reps; ++r) {
    Timer t;
    const DecomposeResult res = decompose(g, w, opt);
    cold.ms = std::min(cold.ms, t.seconds() * 1e3);
    cold.max_boundary = res.max_boundary;
  }
  push_row(cold);

  Row warm{"decompose_grid2d", config, side, g.num_vertices(), k,
           "warm",            1e300,  0.0};
  const auto splitter = make_default_splitter(g, opt.splitter);
#ifdef MMD_BENCH_HAS_WORKSPACE
  DecomposeWorkspace ws;
#endif
  for (int r = 0; r < reps + 1; ++r) {  // first warm call fills the pools
    Timer t;
#ifdef MMD_BENCH_HAS_WORKSPACE
    const DecomposeResult res = decompose(g, w, opt, *splitter, &ws);
#else
    const DecomposeResult res = decompose(g, w, opt, *splitter);
#endif
    if (r == 0) continue;
    warm.ms = std::min(warm.ms, t.seconds() * 1e3);
    warm.max_boundary = res.max_boundary;
  }
  push_row(warm);

#ifdef MMD_BENCH_HAS_CONTEXT
  // The public warm path: a reused DecomposeContext (owned splitter +
  // workspace; zero rebuilds after call one), serial and 2/4/8-threaded
  // (the wider pools drive the multi_split lane tree at its auto fork
  // depth — on a 1-core host these rows measure sync overhead only; see
  // docs/BENCHMARKS.md).
  for (const int threads : {1, 2, 4, 8}) {
    DecomposeOptions copt = opt;
    copt.num_threads = threads;
    Row row{"decompose_grid2d", config,
            side,              g.num_vertices(),
            k,                 threads == 1
                                   ? std::string("ctx-warm")
                                   : "ctx-threads" + std::to_string(threads),
            1e300,             0.0};
    DecomposeContext ctx(g, copt);
    for (int r = 0; r < reps + 1; ++r) {  // first call builds the caches
      Timer t;
      const DecomposeResult res = ctx.decompose(w);
      if (r == 0) continue;
      row.ms = std::min(row.ms, t.seconds() * 1e3);
      row.max_boundary = res.max_boundary;
    }
    push_row(row);
  }

  // PR 4's SweepEval modes on the warm context path: the default
  // better-of-two rule (must merge to max_boundary_vs_seed = 0) and the
  // window_scan rule (cheapest in-window prefix; <= 0 everywhere).
  if constexpr (HasWindowScan<DecomposeOptions>::value) {
    for (const bool window : {false, true}) {
      DecomposeOptions copt = opt;
      set_window_scan(copt, window, 0);
      Row row{"decompose_grid2d", config,
              side,              g.num_vertices(),
              k,                 window ? "eval-window" : "eval-incremental",
              1e300,             0.0};
      DecomposeContext ctx(g, copt);
      for (int r = 0; r < reps + 1; ++r) {
        Timer t;
        const DecomposeResult res = ctx.decompose(w);
        if (r == 0) continue;
        row.ms = std::min(row.ms, t.seconds() * 1e3);
        row.max_boundary = res.max_boundary;
      }
      push_row(row);
    }
  }
#endif
}

/// The fast multilevel mode on the mid-size grids named by the ROADMAP
/// ("n ~ 1k-16k sit at 2.7-4.2x"): per-split constants and rebuild costs
/// dominate there, which is exactly what FastContext amortizes.
/// coarse_target is lowered so every size genuinely coarsens.
void bench_fast(const char* config, int side, int k) {
  const Graph g = make_grid_cube(2, side);
  const std::vector<double> w(static_cast<std::size_t>(g.num_vertices()), 1.0);
  FastOptions opt;
  opt.inner.k = k;
  opt.coarse_target = 512;
  const int reps = reps_for(side);

  Row cold{"fast_grid2d", config, side, g.num_vertices(), k,
           "cold",        1e300,  0.0};
  for (int r = 0; r < reps; ++r) {
    Timer t;
    const FastResult res = decompose_fast(g, w, opt);
    cold.ms = std::min(cold.ms, t.seconds() * 1e3);
    cold.max_boundary = res.max_boundary;
  }
  push_row(cold);

#ifdef MMD_HAS_FAST_CONTEXT
  // The warm multilevel path: cached hierarchy, warm coarse context,
  // persistent finest-level splitter — serial and 2/4/8-threaded.
  for (const int threads : {1, 2, 4, 8}) {
    FastOptions copt = opt;
    copt.inner.num_threads = threads;
    Row row{"fast_grid2d", config,
            side,          g.num_vertices(),
            k,             threads == 1
                               ? std::string("fast-ctx-warm")
                               : "fast-threads" + std::to_string(threads),
            1e300,         0.0};
    FastContext ctx(g, copt);
    for (int r = 0; r < reps + 1; ++r) {  // first call builds the caches
      Timer t;
      const FastResult res = ctx.decompose(w);
      if (r == 0) continue;
      row.ms = std::min(row.ms, t.seconds() * 1e3);
      row.max_boundary = res.max_boundary;
    }
    push_row(row);
  }
#endif
}

void bench_refine(const char* suite, int side, int k, const Coloring& base,
                  const MinmaxRefineOptions& base_opt) {
  const Graph g = make_grid_cube(2, side);
  const std::vector<double> w(static_cast<std::size_t>(g.num_vertices()), 1.0);
  MinmaxRefineOptions opt = base_opt;

  auto run_mode = [&](const char* mode) {
    Row row{suite, "refine", side, g.num_vertices(), k, mode, 1e300, 0.0};
    for (int r = 0; r < 7; ++r) {
      Coloring chi = base;
      Timer t;
      const MinmaxRefineStats stats = minmax_refine(g, chi, w, opt);
      row.ms = std::min(row.ms, t.seconds() * 1e3);
      row.max_boundary = stats.max_boundary_after;
      row.moves = stats.moves;
    }
    push_row(row);
  };

  if constexpr (HasEngine<MinmaxRefineOptions>::value) {
    set_engine(opt, true, 0);
    run_mode("worklist");
    set_engine(opt, false, 0);
    run_mode("sweep");
  } else {
    run_mode("sweep");  // the seed's only engine
  }
}

/// Hill climbing from a random coloring: the boundary is dense, so this
/// stresses raw per-candidate cost (the seed pays O(k + deg) per vertex).
void bench_refine_random(int side, int k) {
  const Graph g = make_grid_cube(2, side);
  MinmaxRefineOptions opt;
  opt.max_passes = 20;
  opt.balance_slack = 60.0;
  bench_refine("refine_random", side, k, random_coloring(g, k, 3), opt);
}

/// Re-refining an already decomposed coloring: the boundary is sparse, the
/// regime of decompose()'s final pass and every decompose_fast uncoarsening
/// level — where the worklist skips the quiescent interior entirely.
void bench_refine_converged(int side, int k) {
  const Graph g = make_grid_cube(2, side);
  const std::vector<double> w(static_cast<std::size_t>(g.num_vertices()), 1.0);
  DecomposeOptions dopt;
  dopt.k = k;
  dopt.use_refinement = false;
  const Coloring base = decompose(g, w, dopt).coloring;
  bench_refine("refine_converged", side, k, base, MinmaxRefineOptions{});
}

// ---- E12: the huge-graph suite (PR 9) --------------------------------------
// Sizes run strictly ascending so the monotone peak-RSS stamp on each row
// reflects the largest instance processed so far.  Reps are small (the
// instances are 16-160x larger than every other suite) and "cold" stays
// the seed-comparable default mode.

/// Decompose rows (cold + ctx-warm) for one prebuilt instance.
void bench_e12_decompose(const char* suite, const char* config, const Graph& g,
                         int side, int k, int reps) {
  const std::vector<double> w(static_cast<std::size_t>(g.num_vertices()), 1.0);
  DecomposeOptions opt;
  opt.k = k;

  Row cold{suite, config, side, g.num_vertices(), k, "cold", 1e300, 0.0};
  cold.m = g.num_edges();
  cold.graph_bytes = g.memory_bytes();
  for (int r = 0; r < reps; ++r) {
    Timer t;
    const DecomposeResult res = decompose(g, w, opt);
    cold.ms = std::min(cold.ms, t.seconds() * 1e3);
    cold.max_boundary = res.max_boundary;
  }
  push_row(cold);

#ifdef MMD_BENCH_HAS_CONTEXT
  Row warm{suite, config, side, g.num_vertices(), k, "ctx-warm", 1e300, 0.0};
  warm.m = g.num_edges();
  warm.graph_bytes = g.memory_bytes();
  DecomposeContext ctx(g, opt);
  for (int r = 0; r < reps + 1; ++r) {  // first call builds the caches
    Timer t;
    const DecomposeResult res = ctx.decompose(w);
    if (r == 0) continue;
    warm.ms = std::min(warm.ms, t.seconds() * 1e3);
    warm.max_boundary = res.max_boundary;
  }
  push_row(warm);
#endif
}

/// Grid instance: one e12_build row (generator + GraphBuilder::build wall
/// time, final graph bytes) and the decompose rows.
void bench_e12_grid(const char* config, int side, int k, int reps) {
  Timer tb;
  const Graph g = make_grid_cube(2, side);
  Row build{"e12_build", config, side, g.num_vertices(), 0, "cold",
            tb.seconds() * 1e3, 0.0};
  build.m = g.num_edges();
  build.graph_bytes = g.memory_bytes();
  push_row(build);
  bench_e12_decompose("e12_grid2d", config, g, side, k, reps);
}

/// Triangulated mesh (bounded-degree planar, diagonals break gridness).
void bench_e12_mesh(const char* config, int side, int k, int reps) {
  Timer tb;
  const Graph g = make_tri_mesh(side, side);
  Row build{"e12_build", config, side, g.num_vertices(), 0, "cold",
            tb.seconds() * 1e3, 0.0};
  build.m = g.num_edges();
  build.graph_bytes = g.memory_bytes();
  push_row(build);
  bench_e12_decompose("e12_mesh", config, g, side, k, reps);
}

/// METIS-file round trip: write a grid instance to disk, drop it, stream
/// it back (e12_read row: read + rebuild wall time), then decompose.
void bench_e12_metis(const char* config, int side, int k, int reps,
                     const char* path) {
  {
    const Graph g = make_grid_cube(2, side);
    const std::vector<double> w(static_cast<std::size_t>(g.num_vertices()),
                                1.0);
    write_metis_file(g, w, path);
  }  // the written graph is gone before the read starts
  Timer tr;
  const GraphWithWeights back = read_metis_file(path);
  Row read{"e12_read", config, side, back.graph.num_vertices(), 0, "cold",
           tr.seconds() * 1e3, 0.0};
  read.m = back.graph.num_edges();
  read.graph_bytes = back.graph.memory_bytes();
  push_row(read);
  std::remove(path);
  bench_e12_decompose("e12_metis", config, back.graph, side, k, reps);
}

/// The full E12 suite: 1M / 4.2M / 10.2M grids, a 10.0M mesh, and a METIS
/// file round trip, ascending.
void bench_e12(bool smoke) {
  const char* metis_path = "mmd_e12_metis.graph.tmp";
  if (smoke) {
    // CI-sized (~1M vertices): the committed peak-RSS baseline rows.
    bench_e12_metis("grid512-file", 512, 16, 1, metis_path);
    bench_e12_mesh("mesh1024", 1024, 16, 1);
    bench_e12_grid("grid1024", 1024, 16, 1);
    return;
  }
  bench_e12_grid("grid1024", 1024, 16, 2);
  bench_e12_metis("grid2048-file", 2048, 16, 1, metis_path);
  bench_e12_grid("grid2048", 2048, 16, 1);
  bench_e12_mesh("mesh3163", 3163, 16, 1);  // 10,004,569 vertices
  bench_e12_grid("grid3200", 3200, 16, 1);  // 10,240,000 vertices
}

// ---- E13: the sweep-quality suite (PR 10) ----------------------------------
// Quality rows (max_boundary is the headline number; ms is informational)
// across workloads where the choice of prefix rule actually matters.
// Modes per instance:
//   * "default"  — SweepMode::BetterOfTwo, the seed's crossing-prefix rule.
//     These rows are their own seed references, so after the merge their
//     max_boundary_vs_seed must be exactly 0.
//   * "window"   — SweepMode::WindowMin (PR 4): cheapest in-window prefix.
//     Strong on wide windows (heavy-tailed weights), can regress when the
//     window is narrow — the behavior that motivated the adaptive policy.
//   * "adaptive" — SweepMode::Adaptive (PR 10): takes the window pick only
//     when it beats the crossing prefix by the margin; with the best-of-
//     both race it is never worse than "default" on any instance.
//   * "orb"      — orthogonal recursive coordinate bisection, the classical
//     mesh-partitioner baseline column (requires coordinates, so the METIS
//     round-trip row — which drops them — has no orb line).

void bench_e13_instance(const char* config, const Graph& g,
                        const std::vector<double>& w, int k, int reps) {
  struct ModeSpec {
    const char* name;
    SweepMode mode;
  };
  constexpr ModeSpec kModes[] = {{"default", SweepMode::BetterOfTwo},
                                 {"window", SweepMode::WindowMin},
                                 {"adaptive", SweepMode::Adaptive}};
  for (const ModeSpec& m : kModes) {
    DecomposeOptions opt;
    opt.k = k;
    opt.sweep_mode = m.mode;
    Row row{"e13_quality", config, 0, g.num_vertices(), k, m.name, 1e300, 0.0};
    for (int r = 0; r < reps; ++r) {
      Timer t;
      const DecomposeResult res = decompose(g, w, opt);
      row.ms = std::min(row.ms, t.seconds() * 1e3);
      row.max_boundary = res.max_boundary;
    }
    push_row(row);
  }
  if (g.has_coords()) {
    Row row{"e13_quality", config, 0, g.num_vertices(), k, "orb", 1e300, 0.0};
    for (int r = 0; r < reps; ++r) {
      Timer t;
      const Coloring chi = orthogonal_recursive_bisection(g, w, k);
      row.ms = std::min(row.ms, t.seconds() * 1e3);
      row.max_boundary = max_boundary_cost(g, chi);
    }
    push_row(row);
  }
}

void bench_e13(bool smoke) {
  const int reps = smoke ? 1 : 2;

  // Unit-weight triangulated mesh: the narrow-window regime (window admits
  // at most the crossing prefixes), so adaptive must cost nothing here.
  {
    const int side = smoke ? 48 : 96;
    const Graph g = make_tri_mesh(side, side);
    const std::vector<double> w(static_cast<std::size_t>(g.num_vertices()),
                                1.0);
    bench_e13_instance("tri-mesh", g, w, 16, reps);
  }

  // The paper's climate workload: smooth insolation weights with storm
  // hot-spots — a genuinely weighted planar mesh.
  {
    ClimateParams params;
    params.rows = smoke ? 32 : 64;
    params.cols = smoke ? 64 : 128;
    const ClimateInstance inst = make_climate_instance(params);
    bench_e13_instance("climate", inst.graph, inst.weights, 16, reps);
  }

  // Heavy-tailed weights on a triangulated mesh: the wide-window regime
  // where the window rule has real candidates to choose from.
  {
    const int side = smoke ? 40 : 64;
    const Graph g = make_tri_mesh(side, side);
    bench_e13_instance("tri-heavy8", g,
                       heavy_weights(g.num_vertices(), 8.0, 271), 16, reps);
  }

  // Anisotropic geometric graph (8:1 slab): direction-dependent cuts where
  // a single crossing prefix per axis order misjudges.
  {
    const int n = smoke ? 6000 : 20000;
    const double radius = std::sqrt(10.0 * (1.0 / 8.0) / (3.14159265358979 * n));
    const Graph g = make_aniso_geometric(n, radius, 8.0);
    bench_e13_instance("aniso8", g, heavy_weights(g.num_vertices(), 4.0, 997),
                       16, reps);
  }

  // 3-D geometric graph: exercises the d = 3 per-axis sweep path.
  {
    const int n = smoke ? 4000 : 12000;
    const double radius =
        std::cbrt(10.0 * 3.0 / (4.0 * 3.14159265358979 * n));
    const Graph g = make_random_geometric3(n, radius);
    bench_e13_instance("geo3", g, heavy_weights(g.num_vertices(), 6.0, 613),
                       16, reps);
  }

  // METIS-file round trip: the climate instance written through the real
  // writer and re-read through the streaming reader (coordinates do not
  // survive the format, so this row also pins the no-coordinate path).
  {
    const char* path = "mmd_e13_metis.graph.tmp";
    ClimateParams params;
    params.rows = smoke ? 32 : 64;
    params.cols = smoke ? 64 : 128;
    params.seed = 23;
    {
      const ClimateInstance inst = make_climate_instance(params);
      write_metis_file(inst.graph, inst.weights, path);
    }
    const GraphWithWeights back = read_metis_file(path);
    std::remove(path);
    bench_e13_instance("climate-metis", back.graph, back.weights, 16, reps);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "bench_out.json";
  const char* label = "current";
  bool e12 = false, e12_smoke = false, e13 = false, e13_smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      label = argv[++i];
    } else if (std::strcmp(argv[i], "--e12") == 0) {
      e12 = true;
    } else if (std::strcmp(argv[i], "--e12-smoke") == 0) {
      e12_smoke = true;
    } else if (std::strcmp(argv[i], "--e13") == 0) {
      e13 = true;
    } else if (std::strcmp(argv[i], "--e13-smoke") == 0) {
      e13_smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  if (e12 || e12_smoke) {
    bench_e12(e12_smoke);
  } else if (e13 || e13_smoke) {
    bench_e13(e13_smoke);
  } else {
    for (const int side : {16, 32, 64, 128, 256}) bench_decompose("n-sweep", side, 16);
    for (const int k : {2, 8, 32, 128}) bench_decompose("k-sweep", 96, k);
    // Heavy-tailed weights widen the hard window (||w||_inf/2), giving the
    // eval-window rule room to pick cheaper cuts than the crossing prefix.
    bench_decompose("w-sweep-h8", 48, 16, 8.0);
    bench_decompose("w-sweep-h4", 64, 8, 4.0);
    bench_decompose("w-sweep-h4", 96, 32, 4.0);
    for (const int side : {32, 64, 128}) bench_fast("n-sweep", side, 16);
    for (const int k : {16, 64}) bench_refine_random(128, k);
    for (const int k : {16, 64}) bench_refine_converged(192, k);
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  // Machine shape stamped into every row so merged artifacts from
  // different runners stay attributable.
#ifdef NDEBUG
  const char* const build_type = "Release";
#else
  const char* const build_type = "Debug";
#endif
  const unsigned host_cores = std::thread::hardware_concurrency();
  std::fprintf(f, "{\n  \"label\": \"%s\",\n  \"rows\": [\n", label);
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::string extra =
        r.moves >= 0 ? ", \"moves\": " + std::to_string(r.moves) : "";
    if (r.m > 0) {
      extra += ", \"m\": " + std::to_string(r.m);
      extra += ", \"graph_bytes\": " + std::to_string(r.graph_bytes);
      extra += ", \"bytes_per_edge\": " +
               std::to_string(r.m > 0 ? static_cast<double>(r.graph_bytes) /
                                            static_cast<double>(r.m)
                                      : 0.0);
    }
    std::fprintf(f,
                 "    {\"suite\": \"%s\", \"config\": \"%s\", \"side\": %d, "
                 "\"n\": %d, \"k\": %d, \"mode\": \"%s\", \"ms\": %.3f, "
                 "\"max_boundary\": %.3f%s, \"peak_rss_bytes\": %zu, "
                 "\"host_cores\": %u, \"build_type\": \"%s\"}%s\n",
                 r.suite.c_str(), r.config.c_str(), r.side, r.n, r.k,
                 r.mode.c_str(), r.ms, r.max_boundary, extra.c_str(),
                 r.peak_rss, host_cores, build_type,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", out_path, g_rows.size());
  return 0;
}
