#!/usr/bin/env python3
"""Gate peak-RSS regressions in an E12 bench run against a baseline.

Usage: check_rss.py current.json baseline.json [--tolerance 0.10]

Both files are bench_runner outputs.  Rows are matched on
(suite, config, side, k, mode); for every matched pair the current
peak_rss_bytes may exceed the baseline by at most the tolerance fraction
(default 10%).  peak_rss_bytes is a process-wide high-water mark, so the
comparison only means something when both runs executed the same configs
in the same (ascending-size) order — which bench_runner guarantees.

Exit codes: 0 ok, 1 regression or malformed input.  Baseline rows missing
from the current run fail (coverage must not silently shrink); current
rows missing from the baseline are reported but pass (new configs need a
baseline refresh, not a red build).
"""
import argparse
import json
import sys


def row_key(row):
    return (row["suite"], row["config"], row["side"], row["k"], row["mode"])


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc["rows"]:
        # Repeated configs keep the max: RSS is a high-water mark.
        key = row_key(row)
        prev = rows.get(key)
        if prev is None or row.get("peak_rss_bytes", 0) > prev.get(
            "peak_rss_bytes", 0
        ):
            rows[key] = row
    return rows


def fmt_bytes(b):
    return f"{b / (1 << 20):.1f} MiB"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.10)
    args = ap.parse_args()

    current = load_rows(args.current)
    baseline = load_rows(args.baseline)

    failures = []
    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        if cur_row is None:
            failures.append(f"{key}: row missing from {args.current}")
            continue
        cur = cur_row.get("peak_rss_bytes", 0)
        base = base_row.get("peak_rss_bytes", 0)
        if cur <= 0:
            failures.append(f"{key}: current run has no peak_rss_bytes stamp")
            continue
        if base <= 0:
            failures.append(f"{key}: baseline has no peak_rss_bytes stamp")
            continue
        limit = base * (1.0 + args.tolerance)
        status = "ok" if cur <= limit else "FAIL"
        print(
            f"{status}: {key}: peak RSS {fmt_bytes(cur)} vs baseline "
            f"{fmt_bytes(base)} (limit {fmt_bytes(limit)})"
        )
        if cur > limit:
            failures.append(
                f"{key}: peak RSS {fmt_bytes(cur)} exceeds baseline "
                f"{fmt_bytes(base)} by more than {args.tolerance:.0%}"
            )

    for key in sorted(set(current) - set(baseline)):
        print(f"note: {key}: not in baseline (refresh bench/e12_rss_baseline.json)")

    if failures:
        print(f"\n{len(failures)} peak-RSS check(s) failed:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"all {len(baseline)} peak-RSS checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
