// Scalability study: how the achievable min-max boundary cost falls as the
// machine count k grows (Theorem 5: ~ ||c||_p / k^{1/p} + ||c||_inf), and
// what that predicts for the parallel efficiency of the climate workload.
//
//   run: ./build/examples/scalability [side]
#include <cstdio>
#include <cstdlib>

#include "core/decompose.hpp"
#include "gen/grid.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const int side = argc > 1 ? std::atoi(argv[1]) : 48;
  const mmd::Graph g = mmd::make_grid_cube(2, side);
  const std::vector<double> w(static_cast<std::size_t>(g.num_vertices()), 1.0);

  mmd::Table table("scaling on the " + std::to_string(side) + "^2 grid",
                   {"k", "compute/class", "max boundary", "boundary/compute",
                    "time ms"});
  std::vector<double> ks, bounds;
  for (int k : mmd::geometric_range(2, 256, 2)) {
    mmd::DecomposeOptions opt;
    opt.k = k;
    const mmd::DecomposeResult res = mmd::decompose(g, w, opt);
    const double compute = res.balance.avg;
    table.add_row({mmd::Table::num(k), mmd::Table::num(compute, 1),
                   mmd::Table::num(res.max_boundary, 1),
                   mmd::Table::num(res.max_boundary / compute, 3),
                   mmd::Table::num(res.total_seconds * 1e3, 1)});
    ks.push_back(k);
    bounds.push_back(res.max_boundary);
  }
  table.print();

  const mmd::PowerFit fit = mmd::fit_power(ks, bounds);
  std::printf("\nmeasured decay: boundary ~ k^%.3f (theory k^{-1/2} until the "
              "||c||_inf floor)\n", fit.exponent);
  std::printf("communication/compute crosses 1 near k ~ n^{1/2}; beyond that "
              "the partition is communication-bound.\n");
  return 0;
}
