// Quickstart: partition a weighted grid into k parts with strictly
// balanced weights and small maximum boundary cost (Theorem 4).
//
//   build:  cmake -B build -G Ninja && cmake --build build
//   run:    ./build/examples/quickstart [k]
#include <cstdio>
#include <cstdlib>

#include "core/decompose.hpp"
#include "gen/grid.hpp"
#include "gen/weights.hpp"

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 8;

  // 1. An instance: a 64x64 grid with mildly fluctuating edge costs and
  //    uniformly random vertex weights (job sizes).
  mmd::CostParams costs;
  costs.model = mmd::CostModel::Uniform;
  costs.lo = 1.0;
  costs.hi = 4.0;
  const mmd::Graph graph = mmd::make_grid_cube(2, 64, costs);

  mmd::WeightParams wp;
  wp.model = mmd::WeightModel::Uniform;
  wp.lo = 1.0;
  wp.hi = 10.0;
  const std::vector<double> weights = mmd::make_weights(graph.num_vertices(), wp);

  // 2. Decompose.  Everything is defaulted: the splitter is chosen per
  //    graph type (GridSplitter here), sigma_p from the grid bound.
  mmd::DecomposeOptions options;
  options.k = k;
  const mmd::DecomposeResult result = mmd::decompose(graph, weights, options);

  // 3. Inspect.  result.coloring[v] is the part of vertex v.
  std::printf("n = %d vertices, m = %d edges, k = %d parts\n",
              graph.num_vertices(), graph.num_edges(), k);
  std::printf("strictly balanced: %s  (max dev %.3f <= (1-1/k)||w||_inf = %.3f)\n",
              result.balance.strictly_balanced ? "yes" : "NO",
              result.balance.max_dev, result.balance.strict_bound);
  std::printf("max boundary cost:  %.1f\n", result.max_boundary);
  std::printf("avg boundary cost:  %.1f\n", result.avg_boundary);
  std::printf("Theorem 4 skeleton: %.1f  (measured/bound = %.2f)\n",
              result.bound.b_max, result.max_boundary / result.bound.b_max);
  std::printf("wall time: %.1f ms\n", result.total_seconds * 1e3);
  return result.balance.strictly_balanced ? 0 : 1;
}
