// GridSplit demo (Section 6, Theorem 19): splitting a 3-D grid whose edge
// costs fluctuate over four orders of magnitude.  Cost-oblivious sweeps
// pay for every expensive edge they cross; GridSplit's coarsening +
// cost-halving recursion finds cuts whose cost tracks
// d * log^{1/d}(phi+1) * ||c||_{d/(d-1)}.
//
//   run: ./build/examples/grid_separator [side] [phi]
#include <cstdio>
#include <cstdlib>

#include "gen/grid.hpp"
#include "separators/grid_split.hpp"
#include "separators/prefix_splitter.hpp"
#include "separators/splittability.hpp"
#include "util/norms.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const int side = argc > 1 ? std::atoi(argv[1]) : 16;
  const double phi = argc > 2 ? std::atof(argv[2]) : 1e4;

  mmd::CostParams costs;
  costs.model = mmd::CostModel::LogUniform;
  costs.lo = 1.0;
  costs.hi = phi;
  const mmd::Graph g = mmd::make_grid_cube(3, side, costs);
  const double p = mmd::grid_natural_p(3);
  const double cnorm = mmd::norm_p(g.edge_costs(), p);
  std::printf("3-D grid %d^3, fluctuation phi=%.0f, ||c||_{3/2}=%.1f\n", side,
              phi, cnorm);

  std::vector<mmd::Vertex> vs(static_cast<std::size_t>(g.num_vertices()));
  for (mmd::Vertex v = 0; v < g.num_vertices(); ++v)
    vs[static_cast<std::size_t>(v)] = v;
  const std::vector<double> w(static_cast<std::size_t>(g.num_vertices()), 1.0);

  mmd::SplitRequest req;
  req.g = &g;
  req.w_list = vs;
  req.weights = w;
  req.target = static_cast<double>(g.num_vertices()) / 2.0;

  mmd::Table table("half-splits",
                   {"splitter", "cut cost", "cost/||c||_p", "|w(U)-w*|"});
  const auto report = [&](const std::string& name, mmd::ISplitter& s) {
    const mmd::SplitResult res = s.split(req);
    table.add_row({name, mmd::Table::num(res.boundary_cost, 1),
                   mmd::Table::num(res.boundary_cost / cnorm, 3),
                   mmd::Table::num(std::abs(res.weight - req.target), 2)});
  };

  mmd::GridSplitter grid;
  report("GridSplit (Theorem 19)", grid);

  mmd::PrefixSplitterOptions oblivious;
  oblivious.use_bfs = false;
  oblivious.refine = false;
  mmd::PrefixSplitter sweeps(oblivious);
  report("cost-oblivious sweeps", sweeps);

  mmd::PrefixSplitter refined;
  report("sweeps + FM refinement", refined);
  table.print();

  std::printf("\nGridSplit recursion depth: %d (theory: O(log2 phi) = %.0f)\n",
              grid.last_depth(), std::log2(phi) + 1);
  std::printf("Theorem 19 shape value d*log^{1/d}(phi+1) = %.2f\n",
              mmd::grid_splittability_bound(3, phi));
  return 0;
}
