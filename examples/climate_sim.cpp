// The paper's motivating application (Section 1): scheduling a climate
// simulation on k machines.  The surface is a triangulated mesh; each
// region is a job whose weight is its simulation time (insolation +
// storms) and whose couplings to neighbors cost communication when placed
// on different machines.
//
// A simple machine model turns a partition into a makespan estimate:
//   makespan_i = compute(class_i) + lambda * communication(class_i)
// The min-max boundary decomposition directly minimizes the worst term.
//
//   run: ./build/examples/climate_sim [k] [lambda]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "baselines/greedy.hpp"
#include "baselines/recursive_bisection.hpp"
#include "core/decompose.hpp"
#include "gen/mesh.hpp"
#include "separators/prefix_splitter.hpp"
#include "util/norms.hpp"
#include "util/table.hpp"

namespace {

double makespan(const mmd::Graph& g, std::span<const double> w,
                const mmd::Coloring& chi, double lambda) {
  const auto loads = mmd::class_measure(w, chi);
  const auto comms = mmd::class_boundary_costs(g, chi);
  double worst = 0.0;
  for (std::size_t i = 0; i < loads.size(); ++i)
    worst = std::max(worst, loads[i] + lambda * comms[i]);
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 12;
  const double lambda = argc > 2 ? std::atof(argv[2]) : 0.3;

  mmd::ClimateParams params;
  params.rows = 64;
  params.cols = 128;
  const mmd::ClimateInstance inst = mmd::make_climate_instance(params);
  const mmd::Graph& g = inst.graph;
  std::printf("climate mesh: %d regions, %d couplings, %d machines, lambda=%.2f\n",
              g.num_vertices(), g.num_edges(), k, lambda);

  mmd::Table table("schedules",
                   {"scheduler", "makespan", "compute max", "comm max",
                    "strictly balanced"});
  const auto report = [&](const std::string& name, const mmd::Coloring& chi) {
    const auto rep = mmd::balance_report(inst.weights, chi);
    table.add_row({name, mmd::Table::num(makespan(g, inst.weights, chi, lambda), 1),
                   mmd::Table::num(rep.max_class, 1),
                   mmd::Table::num(mmd::max_boundary_cost(g, chi), 1),
                   rep.strictly_balanced ? "yes" : "no"});
  };

  mmd::DecomposeOptions opt;
  opt.k = k;
  const mmd::DecomposeResult ours = mmd::decompose(g, inst.weights, opt);
  report("minmax-decomp (ours)", ours.coloring);

  report("greedy LPT (graph-blind)",
         mmd::greedy_coloring(g, inst.weights, k, mmd::GreedyOrder::HeaviestFirst));

  mmd::PrefixSplitter splitter;
  report("recursive bisection",
         mmd::recursive_bisection(g, inst.weights, k, splitter));
  table.print();

  std::printf("\nDecomposition detail: max dev %.2f (allowed %.2f), "
              "max boundary %.1f vs Theorem 4 skeleton %.1f\n",
              ours.balance.max_dev, ours.balance.strict_bound,
              ours.max_boundary, ours.bound.b_max);
  return 0;
}
