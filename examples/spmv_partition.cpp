// Sparse matrix-vector multiply (SpMV) row partitioning — a second
// scientific-computing application of the min-max boundary objective.
//
// Rows of a sparse matrix are distributed over k processors; row i costs
// w_i = nnz(row i) flops, and every nonzero A_ij with rows i and j on
// different processors forces x_j to be communicated.  The symmetrized
// adjacency-of-rows graph with unit-ish costs per shared index makes the
// per-processor communication volume exactly the class boundary cost —
// so minimizing the *maximum* boundary cost minimizes the communication
// bottleneck of the SpMV step.
//
// The matrix here is a synthetic 2-D Poisson 5-point stencil with random
// long-range fill-ins (the shape of preconditioned FEM matrices).
//
//   run: ./build/examples/spmv_partition [grid_side] [k] [fill_fraction]
#include <cstdio>
#include <cstdlib>

#include "baselines/greedy.hpp"
#include "core/decompose.hpp"
#include "core/verify.hpp"
#include "gen/grid.hpp"
#include "util/norms.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const int side = argc > 1 ? std::atoi(argv[1]) : 48;
  const int k = argc > 2 ? std::atoi(argv[2]) : 16;
  const double fill = argc > 3 ? std::atof(argv[3]) : 0.02;

  // Rows = grid points; stencil couplings from the grid, plus random
  // long-range fill-ins.
  const mmd::Graph stencil = mmd::make_grid_cube(2, side);
  const mmd::Vertex n = stencil.num_vertices();
  mmd::GraphBuilder builder(n);
  for (mmd::EdgeId e = 0; e < stencil.num_edges(); ++e) {
    const auto [u, v] = stencil.endpoints(e);
    builder.add_edge(u, v, 1.0);
  }
  mmd::Rng rng(2024);
  const auto fills = static_cast<long long>(fill * n * 4);
  for (long long i = 0; i < fills; ++i) {
    const auto u = static_cast<mmd::Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<mmd::Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u != v) builder.add_edge(u, v, 1.0);
  }
  for (mmd::Vertex v = 0; v < n; ++v) builder.set_coords(v, stencil.coords(v));
  const mmd::Graph g = builder.build();

  // Row work = nnz = degree + 1 (diagonal).
  std::vector<double> w(static_cast<std::size_t>(n));
  for (mmd::Vertex v = 0; v < n; ++v)
    w[static_cast<std::size_t>(v)] = g.degree(v) + 1.0;

  std::printf("SpMV: %d rows, %d off-diagonal couplings, %d processors\n",
              g.num_vertices(), g.num_edges(), k);

  mmd::Table table("row distributions",
                   {"method", "max comm volume", "max flops", "strict"});
  const auto report = [&](const std::string& name, const mmd::Coloring& chi) {
    const auto rep = mmd::verify_decomposition(g, w, chi);
    table.add_row({name, mmd::Table::num(rep.max_boundary, 0),
                   mmd::Table::num(mmd::norm_inf(mmd::class_measure(w, chi)), 0),
                   rep.strictly_balanced ? "yes" : "no"});
  };

  mmd::DecomposeOptions opt;
  opt.k = k;
  opt.init = mmd::InitMethod::Best;
  const mmd::DecomposeResult ours = mmd::decompose(g, w, opt);
  report("minmax-decomp", ours.coloring);
  report("greedy LPT (nnz only)",
         mmd::greedy_coloring(g, w, k, mmd::GreedyOrder::HeaviestFirst));
  table.print();

  const auto rep = mmd::verify_decomposition(g, w, ours.coloring);
  std::printf("\nverification: %s (%d classes, %d fragmented)\n",
              rep.ok ? "OK" : "FAILED", rep.nonempty_classes,
              rep.fragmented_classes);
  return rep.ok ? 0 : 1;
}
